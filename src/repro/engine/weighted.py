"""Batched, parallel audit engine for the weighted stack (Section 4).

The Boolean engine (:mod:`repro.engine.batched` / :mod:`repro.engine.pool`)
evaluates A1–A8 audits over one shared distance matrix per operator; this
module gives F1–F8 audits of weighted operators the same architecture:

* :class:`DenseWeightedOperator` wraps a weighted operator whose
  assignment builder publishes the ``kind="wdist"`` batching contract
  (see :class:`repro.core.weighted.WdistOrderBuilder`) and evaluates
  ``ψ̃ ▷ μ̃`` directly on dense float64 weight vectors: one shared
  ``2^|𝒯| × 2^|𝒯|`` distance matrix per (operator, vocabulary), per-ψ̃ key
  vectors memoized in a bounded :class:`~repro.orders.cache.AssignmentCache`
  (one matvec per distinct ψ̃), and a bounded (ψ̃, μ̃) result cache.
* :data:`WEIGHTED_DENSE_EVALUATORS` re-express each F-axiom as pointwise
  float64 array algebra (⊔ = ``+``, ⊓ = ``minimum``, → = ``all(≤)``) —
  exact on the integer-weighted scenarios the samplers produce, because
  IEEE doubles are lossless on integers below 2^53.
* chunked fan-out over a ``ProcessPoolExecutor`` mirrors the Boolean
  pool: deterministic captured-RNG chunks
  (:func:`repro.engine.chunks.plan_weighted_scenarios`), min-global-index
  counterexample merge, early cancellation under ``stop_at_first``, and
  worker metrics shipped as ``(pid, seq)``-stamped snapshots.

Every flagged scenario is re-checked with the scalar Fraction checker
before being reported — the counterexample objects are exactly the legacy
ones, and a dense/scalar disagreement raises instead of mis-reporting.
``jobs=1`` never touches the pool or the dense evaluator: it routes
through the legacy scalar loop and is identical to it by construction.
"""

from __future__ import annotations

import os
import pickle
import random
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

try:  # pragma: no cover - numpy is baked into the container
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from repro import obs
from repro.core.weighted import WeightedKnowledgeBase
from repro.distances import kernels
from repro.engine.chunks import (
    DEFAULT_CHUNK_SIZE,
    ChunkSpec,
    WeightedScenarioPlan,
    decode_weighted_chunk,
    plan_weighted_scenarios,
)
from repro.engine.faults import FaultPlan, trip
from repro.engine.pool import EngineStats, _ensure_unique
from repro.engine.resilience import (
    DEFAULT_MAX_RETRIES,
    FailureReport,
    ResilienceConfig,
    run_resilient,
)
from repro.engine.shm import MIN_SHARED_BYTES, Arena, ArenaView, shm_available
from repro.errors import PostulateError
from repro.logic.interpretation import Vocabulary
from repro.orders.cache import AssignmentCache, CacheInfo
from repro.postulates.weighted_axioms import (
    WEIGHTED_AXIOMS,
    WeightedAxiom,
    WeightedCounterexample,
    WeightedOperator,
)

__all__ = [
    "MAX_DENSE_ATOMS",
    "WEIGHTED_KEY_CACHE_SIZE",
    "WEIGHTED_RESULT_CACHE_SIZE",
    "WEIGHTED_DENSE_EVALUATORS",
    "DenseWeightedOperator",
    "WeightedChunkTask",
    "WeightedChunkOutcome",
    "WeightedAuditOutcome",
    "evaluate_weighted_chunk",
    "run_weighted_audit",
    "check_weighted_axiom_parallel",
]

#: Vocabulary-size ceiling for the shared dense distance matrix: a float64
#: ``2^n × 2^n`` matrix costs ``2^(2n+3)`` bytes (32 MiB at n=11), and each
#: pool worker holds its own copy.  Larger vocabularies fall back to the
#: delegation path (scalar operator behind the result cache).
MAX_DENSE_ATOMS = 11

#: Distinct ψ̃ key vectors kept per operator (one matvec each).
WEIGHTED_KEY_CACHE_SIZE = 1024

#: Distinct (ψ̃, μ̃) result vectors kept per operator.
WEIGHTED_RESULT_CACHE_SIZE = 2048


class DenseWeightedOperator:
    """A weighted operator evaluated on dense mask-indexed weight vectors.

    When the wrapped operator's assignment builder publishes the
    ``kind="wdist"`` contract with an integer-valued metric, ``apply``
    becomes: one shared distance matrix ``D``, keys ``D @ ψ̃`` (memoized
    per ψ̃), and ``Min(Mod(μ̃), ≤ψ̃)`` as a masked argmin over μ̃'s support —
    no Fraction arithmetic, no per-scenario matrix builds.  Other
    operators (or oversized vocabularies) delegate to the wrapped
    operator's scalar ``apply`` behind the (ψ̃, μ̃) result cache, so the
    chunked parallel sweep still applies.

    Exactness domain: float64 arithmetic on integer weights and integer
    distances is lossless below 2^53; the audit samplers only emit small
    integer weights, so dense verdicts match the Fraction reference
    bit for bit (and every reported failure is re-checked by the scalar
    checker regardless).
    """

    def __init__(
        self,
        operator: WeightedOperator,
        vocabulary: Vocabulary,
        key_cache_size: Optional[int] = WEIGHTED_KEY_CACHE_SIZE,
        result_cache_size: Optional[int] = WEIGHTED_RESULT_CACHE_SIZE,
        shared_matrix=None,
    ):
        self._operator = operator
        self._vocabulary = vocabulary
        self.name = operator.name
        self._keys = AssignmentCache(
            maxsize=key_cache_size, name="engine.weighted_keys"
        )
        self._results = AssignmentCache(
            maxsize=result_cache_size, name="engine.weighted_results"
        )
        self._matrix = None
        self._matrix_shared = False
        count = vocabulary.interpretation_count
        if (
            shared_matrix is not None
            and np is not None
            and getattr(shared_matrix, "shape", None) == (count, count)
            and getattr(shared_matrix, "dtype", None) == np.float64
        ):
            # Zero-copy path: the arena published this exact float64
            # matrix; mapping it is bit-identical to the rebuild below.
            self._matrix = shared_matrix
            self._matrix_shared = True
        elif np is not None and vocabulary.size <= MAX_DENSE_ATOMS:
            assignment = getattr(operator, "assignment", None)
            builder = getattr(assignment, "builder", None)
            if getattr(builder, "kind", None) == "wdist":
                masks = range(count)
                matrix = np.asarray(
                    kernels.distance_matrix(
                        masks, masks, vocabulary, builder.metric
                    )
                )
                if matrix.dtype.kind in "iu":
                    self._matrix = matrix.astype(np.float64)

    @property
    def dense(self) -> bool:
        """True iff ψ̃ ▷ μ̃ runs on the shared-matrix fast path."""
        return self._matrix is not None

    @property
    def matrix_shared(self) -> bool:
        """True iff the matrix is a mapped arena view, not a local build."""
        return self._matrix_shared

    @property
    def inner(self) -> WeightedOperator:
        """The wrapped scalar operator (the exactness reference)."""
        return self._operator

    @property
    def vocabulary(self) -> Vocabulary:
        """The interpretation space the engine is specialized to."""
        return self._vocabulary

    def cache_info(self) -> dict[str, CacheInfo]:
        """Hit/miss statistics of the per-ψ̃ key and (ψ̃, μ̃) result caches."""
        return {
            "keys": self._keys.cache_info(),
            "results": self._results.cache_info(),
        }

    def _keys_for(self, psi_bytes: bytes):
        psi = np.frombuffer(psi_bytes, dtype=np.float64)
        return self._matrix @ psi

    def _delegate(self, psi_vec, mu_vec):
        psi = WeightedKnowledgeBase.from_dense(self._vocabulary, psi_vec)
        mu = WeightedKnowledgeBase.from_dense(self._vocabulary, mu_vec)
        return self._operator.apply(psi, mu).dense()

    def apply_dense(self, psi_vec, mu_vec):
        """``ψ̃ ▷ μ̃`` on mask-indexed float64 vectors, as a float64 vector."""
        if self._matrix is None:
            key = (psi_vec.tobytes(), mu_vec.tobytes())
            return self._results.get_or_build(
                key, lambda _key: self._delegate(psi_vec, mu_vec)
            )
        if not psi_vec.any():
            return np.zeros_like(mu_vec)
        keys = self._keys.get_or_build(psi_vec.tobytes(), self._keys_for)
        support = mu_vec > 0.0
        if not support.any():
            return np.zeros_like(mu_vec)
        best = keys[support].min()
        return np.where(support & (keys == best), mu_vec, 0.0)

    def apply(
        self, psi: WeightedKnowledgeBase, mu: WeightedKnowledgeBase
    ) -> WeightedKnowledgeBase:
        """Object-level convenience wrapper over :meth:`apply_dense`."""
        return WeightedKnowledgeBase.from_dense(
            self._vocabulary, self.apply_dense(psi.dense(), mu.dense())
        )

    def __repr__(self) -> str:
        mode = "dense" if self.dense else "delegate"
        return f"<DenseWeightedOperator {self.name!r} ({mode})>"


# -- dense axiom evaluators ---------------------------------------------------------
#
# Each evaluator returns True iff the scenario VIOLATES the axiom, using
# the paper's weighted connectives as array algebra.  ``apply`` is
# ``DenseWeightedOperator.apply_dense``.


def _implies(left, right) -> bool:
    return bool(np.all(left <= right))


def _dense_f1(apply: Callable, scenario) -> bool:
    psi, mu = scenario
    return not _implies(apply(psi, mu), mu)


def _dense_f2(apply: Callable, scenario) -> bool:
    psi, mu = scenario
    if psi.any():
        return False
    return bool(apply(psi, mu).any())


def _dense_f3(apply: Callable, scenario) -> bool:
    psi, mu = scenario
    if not (psi.any() and mu.any()):
        return False
    return not apply(psi, mu).any()


def _dense_f4(apply: Callable, scenario) -> bool:
    psi, mu = scenario
    return not np.array_equal(apply(psi, mu), apply(psi, mu))


def _dense_f5(apply: Callable, scenario) -> bool:
    psi, mu, phi = scenario
    left = np.minimum(apply(psi, mu), phi)
    right = apply(psi, np.minimum(mu, phi))
    return not _implies(left, right)


def _dense_f6(apply: Callable, scenario) -> bool:
    psi, mu, phi = scenario
    left = np.minimum(apply(psi, mu), phi)
    if not left.any():
        return False
    right = apply(psi, np.minimum(mu, phi))
    return not _implies(right, left)


def _dense_f7(apply: Callable, scenario) -> bool:
    psi1, psi2, mu = scenario
    left = np.minimum(apply(psi1, mu), apply(psi2, mu))
    right = apply(psi1 + psi2, mu)
    return not _implies(left, right)


def _dense_f8(apply: Callable, scenario) -> bool:
    psi1, psi2, mu = scenario
    left = np.minimum(apply(psi1, mu), apply(psi2, mu))
    if not left.any():
        return False
    right = apply(psi1 + psi2, mu)
    return not _implies(right, left)


#: Axiom name → dense violation test.  Covers all of F1–F8; axioms outside
#: the table (custom extensions) fall back to the scalar checker per
#: scenario, still inside the chunked parallel sweep.
WEIGHTED_DENSE_EVALUATORS: dict[str, Callable] = {
    "F1": _dense_f1,
    "F2": _dense_f2,
    "F3": _dense_f3,
    "F4": _dense_f4,
    "F5": _dense_f5,
    "F6": _dense_f6,
    "F7": _dense_f7,
    "F8": _dense_f8,
}


# -- chunk-level work units ---------------------------------------------------------


@dataclass(frozen=True)
class WeightedChunkTask:
    """One unit of worker work: a chunk of one weighted-axiom audit.

    ``attempt`` counts retries (0 on first submission) for the
    deterministic fault hook; it plays no part in evaluation.
    """

    unit: int
    axiom: WeightedAxiom
    roles: int
    interpretation_count: int
    max_weight: int
    density: float
    include_unsatisfiable: bool
    chunk: ChunkSpec
    attempt: int = 0


@dataclass(frozen=True)
class WeightedChunkOutcome:
    """A worker's verdict on one weighted chunk (see
    :class:`repro.engine.pool.ChunkOutcome` for the field semantics —
    cache counters are deltas, ``(pid, seq)`` orders cumulative worker
    metric snapshots)."""

    unit: int
    ordinal: int
    start: int
    first_offset: Optional[int]
    counterexample: Optional[WeightedCounterexample]
    key_hits: int = 0
    key_misses: int = 0
    result_hits: int = 0
    result_misses: int = 0
    seconds: float = 0.0
    pid: int = 0
    seq: int = 0
    metrics: Optional[dict] = None


@dataclass
class WeightedAuditOutcome:
    """Results keyed by axiom name (``None`` = held on every sampled
    scenario), plus the engine's aggregate counters and the failure
    report of anything the resilience layer absorbed."""

    results: dict[str, Optional[WeightedCounterexample]] = field(default_factory=dict)
    stats: EngineStats = field(default_factory=EngineStats)
    failures: FailureReport = field(default_factory=FailureReport)


# -- worker side --------------------------------------------------------------------

_WORKER_STATE: Optional[dict] = None
_WORKER_SEQ = 0
_WORKER_FAULTS: Optional[FaultPlan] = None


def _build_worker_state(
    vocabulary: Vocabulary,
    operator: WeightedOperator,
    arena: Optional[ArenaView] = None,
) -> dict:
    return {
        "vocabulary": vocabulary,
        "operator": DenseWeightedOperator(
            operator,
            vocabulary,
            shared_matrix=None if arena is None else arena.array("wmatrix"),
        ),
        # The dense matrix view aliases the arena's mappings, so the view
        # must stay alive exactly as long as the state does.
        "arena": arena,
    }


def _init_worker(payload: bytes) -> None:
    global _WORKER_STATE, _WORKER_SEQ, _WORKER_FAULTS
    obs_enabled, _WORKER_FAULTS, directory, roster_blob = pickle.loads(payload)
    _WORKER_SEQ = 0
    # Fresh registry before the arena attach and worker state, so
    # mapped-vs-rebuilt work is attributed to this worker (and forked
    # parent history is not double-counted).
    if obs_enabled:
        obs.enable(obs.MetricsRegistry())
    else:
        obs.disable()
    arena: Optional[ArenaView] = None
    if directory is not None:
        arena = ArenaView.attach(directory)
        if roster_blob is None:
            roster_blob = arena.blob("roster")
    if roster_blob is None:
        # Arena-only roster whose segment failed verification: raising
        # routes the run down the resilience ladder to the parent's
        # serial path, which never needs the arena.
        raise RuntimeError(
            "weighted audit worker: operator roster unavailable "
            "(arena attach failed)"
        )
    vocabulary, operator = pickle.loads(roster_blob)
    _WORKER_STATE = _build_worker_state(vocabulary, operator, arena)


def _cache_snapshot(operator: DenseWeightedOperator) -> tuple[int, int, int, int]:
    info = operator.cache_info()
    return (
        info["keys"].hits,
        info["keys"].misses,
        info["results"].hits,
        info["results"].misses,
    )


def _vector_of_map(weights: dict[int, int], interpretation_count: int):
    vector = np.zeros(interpretation_count, dtype=np.float64)
    for mask, weight in weights.items():
        vector[mask] = float(weight)
    return vector


def _scenario_kbs(
    vocabulary: Vocabulary, maps: Sequence[dict[int, int]]
) -> tuple[WeightedKnowledgeBase, ...]:
    return tuple(WeightedKnowledgeBase(vocabulary, weights) for weights in maps)


def evaluate_weighted_chunk(
    state: dict, task: WeightedChunkTask
) -> WeightedChunkOutcome:
    """Evaluate one weighted chunk against the worker state.

    Module-level (and state-explicit) so tests can drive the exact worker
    code path in-process.
    """
    vocabulary: Vocabulary = state["vocabulary"]
    operator: DenseWeightedOperator = state["operator"]
    chunk_start = time.perf_counter()
    before = _cache_snapshot(operator)
    plan = WeightedScenarioPlan(
        roles=task.roles,
        interpretation_count=task.interpretation_count,
        total=task.chunk.start + task.chunk.count,
        max_weight=task.max_weight,
        density=task.density,
        include_unsatisfiable=task.include_unsatisfiable,
        chunks=(task.chunk,),
    )
    scenarios = decode_weighted_chunk(plan, task.chunk)
    first_offset: Optional[int] = None
    counterexample: Optional[WeightedCounterexample] = None
    evaluator = WEIGHTED_DENSE_EVALUATORS.get(task.axiom.name)
    if evaluator is not None and operator.dense:
        for offset, maps in enumerate(scenarios):
            vectors = tuple(
                _vector_of_map(weights, task.interpretation_count)
                for weights in maps
            )
            if evaluator(operator.apply_dense, vectors):
                first_offset = offset
                break
    else:
        for offset, maps in enumerate(scenarios):
            counterexample = task.axiom.check_instance(
                operator.inner, _scenario_kbs(vocabulary, maps)
            )
            if counterexample is not None:
                first_offset = offset
                break
    if first_offset is not None and counterexample is None:
        # Reconstruct the flagged scenario as exact weighted KBs and
        # re-run the scalar checker: the reported counterexample is the
        # legacy object, and the dense evaluator is held to the Fraction
        # reference.
        counterexample = task.axiom.check_instance(
            operator.inner, _scenario_kbs(vocabulary, scenarios[first_offset])
        )
        if counterexample is None:  # pragma: no cover - exactness violation
            raise PostulateError(
                f"dense evaluator for {task.axiom.name} flagged a scenario "
                f"the scalar checker accepts (operator {operator.name})"
            )
    after = _cache_snapshot(operator)
    elapsed = time.perf_counter() - chunk_start
    registry = obs.active()
    if registry is not None:
        registry.counter("engine.weighted_chunks_completed").inc()
        registry.counter("engine.weighted_scenarios").inc(task.chunk.count)
        registry.histogram("engine.weighted_chunk_seconds").observe(elapsed)
    return WeightedChunkOutcome(
        unit=task.unit,
        ordinal=task.chunk.ordinal,
        start=task.chunk.start,
        first_offset=first_offset,
        counterexample=counterexample,
        key_hits=after[0] - before[0],
        key_misses=after[1] - before[1],
        result_hits=after[2] - before[2],
        result_misses=after[3] - before[3],
        seconds=elapsed,
    )


def _run_chunk(task: WeightedChunkTask) -> WeightedChunkOutcome:
    global _WORKER_SEQ
    assert _WORKER_STATE is not None, "pool worker used before initialization"
    # Injected faults fire only here — the worker entry point — never in
    # the parent's serial re-evaluation, so degradation always terminates.
    trip(_WORKER_FAULTS, task.unit, task.chunk.ordinal, task.attempt)
    outcome = evaluate_weighted_chunk(_WORKER_STATE, task)
    registry = obs.active()
    if registry is None:
        return outcome
    _WORKER_SEQ += 1
    return replace(
        outcome, pid=os.getpid(), seq=_WORKER_SEQ, metrics=registry.snapshot()
    )


# -- parent side --------------------------------------------------------------------


@dataclass
class _WeightedUnit:
    """Parent-side bookkeeping for one weighted-axiom audit."""

    axiom: WeightedAxiom
    plan: WeightedScenarioPlan
    best_index: Optional[int] = None
    counterexample: Optional[WeightedCounterexample] = None

    def absorb(self, outcome: WeightedChunkOutcome) -> bool:
        """Merge a chunk outcome; True iff the best failure improved."""
        if outcome.first_offset is None:
            return False
        index = outcome.start + outcome.first_offset
        if self.best_index is None or index < self.best_index:
            self.best_index = index
            self.counterexample = outcome.counterexample
            return True
        return False


def _plan_weighted_units(
    axioms: Sequence[WeightedAxiom],
    vocabulary: Vocabulary,
    scenarios: int,
    rng: int | random.Random,
    chunk_size: int,
    max_weight: int,
    density: float,
) -> list[_WeightedUnit]:
    """Plan every axiom audit in the legacy iteration order.

    An integer seed builds a fresh stream per axiom — matching the serial
    ``audit_weighted_operator`` loop, where each ``check_weighted_axiom``
    call seeds its own generator — and a shared ``Random`` instance is
    consumed sequentially in this same order.
    """
    units: list[_WeightedUnit] = []
    for axiom in axioms:
        generator = random.Random(rng) if isinstance(rng, int) else rng
        plan = plan_weighted_scenarios(
            vocabulary,
            len(axiom.roles),
            scenarios,
            generator,
            chunk_size,
            max_weight,
            density,
        )
        units.append(_WeightedUnit(axiom, plan))
    return units


def _serial_weighted_audit(
    operator: WeightedOperator,
    axioms: Sequence[WeightedAxiom],
    vocabulary: Vocabulary,
    scenarios: int,
    rng: int | random.Random,
    max_weight: int,
    density: float,
) -> WeightedAuditOutcome:
    """The pure-serial fallback: the legacy scalar loop, axiom by axiom."""
    from repro.postulates.weighted_axioms import check_weighted_axiom

    outcome = WeightedAuditOutcome(stats=EngineStats(serial_fallback=True))
    shared = rng if isinstance(rng, random.Random) else None
    start = time.perf_counter()
    for axiom in axioms:
        generator = random.Random(rng) if shared is None else shared
        outcome.results[axiom.name] = check_weighted_axiom(
            operator,
            axiom,
            vocabulary,
            scenarios=scenarios,
            rng=generator,
            max_weight=max_weight,
            density=density,
        )
        outcome.stats.scenarios += scenarios
    outcome.stats.elapsed_seconds = time.perf_counter() - start
    registry = obs.active()
    if registry is not None:
        registry.counter("engine.weighted_audits").inc()
        registry.histogram("engine.weighted_audit_seconds").observe(
            outcome.stats.elapsed_seconds
        )
    return outcome


def _build_weighted_arena(
    vocabulary: Vocabulary, operator: WeightedOperator, roster_blob: bytes
) -> Optional[Arena]:
    """Publish the float64 distance matrix workers would otherwise build.

    Mirrors :class:`DenseWeightedOperator`'s own eligibility exactly
    (``kind="wdist"`` contract, integer metric, vocabulary within
    :data:`MAX_DENSE_ATOMS`), so the parent publishes a matrix precisely
    when every worker would rebuild the identical one.  Matrices under
    :data:`~repro.engine.shm.MIN_SHARED_BYTES` stay local — segment
    overhead would beat the rebuild they save.
    """
    if np is None or vocabulary.size > MAX_DENSE_ATOMS:
        return None
    assignment = getattr(operator, "assignment", None)
    builder = getattr(assignment, "builder", None)
    if getattr(builder, "kind", None) != "wdist":
        return None
    masks = range(vocabulary.interpretation_count)
    matrix = np.asarray(
        kernels.distance_matrix(masks, masks, vocabulary, builder.metric)
    )
    if matrix.dtype.kind not in "iu":
        return None
    dense = matrix.astype(np.float64)
    if dense.nbytes < MIN_SHARED_BYTES:
        return None
    arena = Arena()
    try:
        arena.publish_array("wmatrix", dense)
        arena.publish_bytes("roster", roster_blob)
        return arena
    except Exception:
        arena.close()
        raise


def run_weighted_audit(
    operator: WeightedOperator,
    axioms: Sequence[WeightedAxiom] = WEIGHTED_AXIOMS,
    vocabulary: Optional[Vocabulary] = None,
    scenarios: int = 500,
    rng: int | random.Random = 0,
    stop_at_first: bool = True,
    jobs: int = 1,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    max_weight: int = 5,
    density: float = 0.5,
    chunk_timeout: Optional[float] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    faults: Optional[FaultPlan] = None,
    shm: Optional[bool] = None,
) -> WeightedAuditOutcome:
    """Audit one weighted operator against every axiom, fanned out over
    ``jobs`` pool workers (``jobs=1``: the legacy serial loop, identical
    to calling ``check_weighted_axiom`` per axiom).

    ``chunk_timeout`` / ``max_retries`` / ``faults`` configure the
    resilience layer, and ``shm`` the zero-copy arena path (``None`` =
    auto, ``REPRO_SHM`` overrides), exactly as in
    :func:`repro.engine.pool.run_audit`.
    """
    if vocabulary is None:
        raise ValueError("run_weighted_audit requires a vocabulary")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    _ensure_unique([axiom.name for axiom in axioms], "axiom")
    if jobs == 1:
        return _serial_weighted_audit(
            operator, axioms, vocabulary, scenarios, rng, max_weight, density
        )
    if faults is None:
        faults = FaultPlan.from_env()
    # Pickle before planning: the serial fallback must see the caller's
    # RNG untouched (planning fast-forwards a shared stream).  One
    # serialization per run — the bytes are reused verbatim by every pool
    # (re)spawn, never re-pickled.
    try:
        roster_blob = pickle.dumps((vocabulary, operator))
    except Exception as error:  # pickling contract violated by a custom operator
        warnings.warn(
            f"weighted audit engine: operator does not pickle ({error}); "
            "falling back to the serial loop",
            RuntimeWarning,
            stacklevel=2,
        )
        return _serial_weighted_audit(
            operator, axioms, vocabulary, scenarios, rng, max_weight, density
        )
    units = _plan_weighted_units(
        axioms, vocabulary, scenarios, rng, chunk_size, max_weight, density
    )

    env_shm = os.environ.get("REPRO_SHM", "").strip()
    if env_shm in {"0", "1"}:
        shm = env_shm == "1"
    if shm is None:
        use_shm = shm_available()
    elif shm and not shm_available():
        warnings.warn(
            "weighted audit engine: shared-memory arenas unavailable (numpy "
            "or multiprocessing.shared_memory missing); workers will rebuild "
            "their state",
            RuntimeWarning,
            stacklevel=2,
        )
        use_shm = False
    else:
        use_shm = shm
    arena: Optional[Arena] = None
    if use_shm:
        arena = _build_weighted_arena(vocabulary, operator, roster_blob)
    directory = arena.directory() if arena is not None else None
    payload = pickle.dumps(
        (obs.enabled(), faults, directory, None if arena is not None else roster_blob)
    )

    outcome = WeightedAuditOutcome()
    stats = outcome.stats
    if arena is not None:
        stats.shm_segments = arena.segment_count
        stats.shm_bytes = arena.bytes_published
    run_start = time.perf_counter()
    worker_metrics: dict[int, tuple[int, dict]] = {}
    context = None
    try:
        import multiprocessing

        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
    except ImportError:  # pragma: no cover
        pass

    def make_executor() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_init_worker,
            initargs=(payload,),
            mp_context=context,
        )

    def handle_outcome(
        task: WeightedChunkTask, chunk_outcome: WeightedChunkOutcome
    ) -> bool:
        unit = units[chunk_outcome.unit]
        stats.chunks += 1
        stats.scenarios += task.chunk.count
        stats.key_hits += chunk_outcome.key_hits
        stats.key_misses += chunk_outcome.key_misses
        stats.result_hits += chunk_outcome.result_hits
        stats.result_misses += chunk_outcome.result_misses
        stats.chunk_seconds += chunk_outcome.seconds
        if chunk_outcome.metrics is not None:
            stored = worker_metrics.get(chunk_outcome.pid)
            if stored is None or chunk_outcome.seq > stored[0]:
                worker_metrics[chunk_outcome.pid] = (
                    chunk_outcome.seq,
                    chunk_outcome.metrics,
                )
        return unit.absorb(chunk_outcome)

    def may_skip(task: WeightedChunkTask) -> bool:
        # Only chunks starting after the best failure can be skipped: an
        # earlier chunk may still hold the globally first counterexample.
        unit = units[task.unit]
        return (
            stop_at_first
            and unit.best_index is not None
            and task.chunk.start > unit.best_index
        )

    parent_state: dict = {}

    def serial_eval(task: WeightedChunkTask) -> WeightedChunkOutcome:
        # Last-resort degradation: the parent evaluates the chunk with
        # the exact worker code path (fault injection never fires here).
        if not parent_state:
            parent_state.update(
                _build_worker_state(
                    vocabulary,
                    operator,
                    None if arena is None else arena.view(),
                )
            )
        return evaluate_weighted_chunk(parent_state, task)

    def on_restart() -> None:
        # Respawned workers re-attach the same arena names; a vanished
        # segment would mean silent rebuild storms, so surface it.
        if arena is None:
            return
        missing = arena.verify()
        if missing:
            warnings.warn(
                f"weighted audit engine: {len(missing)} arena segment(s) "
                "vanished across a pool restart; respawned workers will "
                "rebuild locally",
                RuntimeWarning,
                stacklevel=2,
            )

    tasks = [
        WeightedChunkTask(
            unit=unit_id,
            axiom=unit.axiom,
            roles=unit.plan.roles,
            interpretation_count=unit.plan.interpretation_count,
            max_weight=unit.plan.max_weight,
            density=unit.plan.density,
            include_unsatisfiable=unit.plan.include_unsatisfiable,
            chunk=chunk,
        )
        for unit_id, unit in enumerate(units)
        for chunk in unit.plan.chunks
    ]
    config = ResilienceConfig(chunk_timeout=chunk_timeout, max_retries=max_retries)
    try:
        with obs.span("engine.run_weighted_audit", jobs=jobs, units=len(units)):
            outcome.failures = run_resilient(
                tasks,
                _run_chunk,
                make_executor,
                handle_outcome,
                may_skip,
                serial_eval,
                config,
                metric_prefix="engine.weighted_",
                on_restart=on_restart,
            )
    finally:
        # The sole unlink point: workers never own the names, so closing
        # here on every exit path keeps /dev/shm clean.
        if arena is not None:
            arena.close()
    stats.retries = outcome.failures.retries
    stats.worker_crashes = outcome.failures.worker_crashes
    stats.pool_restarts = outcome.failures.pool_restarts
    stats.chunks_degraded = outcome.failures.chunks_degraded
    stats.elapsed_seconds = time.perf_counter() - run_start
    registry = obs.active()
    if registry is not None:
        for _, snapshot in worker_metrics.values():
            registry.merge_snapshot(snapshot)
        registry.counter("engine.weighted_audits").inc()
        registry.gauge("engine.shm_segments").set(stats.shm_segments)
        if arena is not None:
            # Ensure the worker-side arena counters exist in the payload
            # even when every attach succeeded with nothing to count.
            registry.counter("engine.shm_bytes_mapped")
            registry.counter("engine.shm_attach_failures")
        registry.histogram("engine.weighted_audit_seconds").observe(
            stats.elapsed_seconds
        )
        if stats.elapsed_seconds > 0:
            registry.gauge("engine.weighted_scenarios_per_second").set(
                stats.scenarios / stats.elapsed_seconds
            )
    for unit in units:
        outcome.results[unit.axiom.name] = unit.counterexample
    return outcome


def check_weighted_axiom_parallel(
    operator: WeightedOperator,
    axiom: WeightedAxiom,
    vocabulary: Vocabulary,
    scenarios: int = 500,
    rng: int | random.Random = 0,
    jobs: int = 2,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    max_weight: int = 5,
    density: float = 0.5,
    chunk_timeout: Optional[float] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    faults: Optional[FaultPlan] = None,
    shm: Optional[bool] = None,
) -> Optional[WeightedCounterexample]:
    """Parallel counterpart of
    :func:`repro.postulates.weighted_axioms.check_weighted_axiom` for a
    single axiom."""
    outcome = run_weighted_audit(
        operator,
        [axiom],
        vocabulary,
        scenarios=scenarios,
        rng=rng,
        jobs=jobs,
        chunk_size=chunk_size,
        max_weight=max_weight,
        density=density,
        chunk_timeout=chunk_timeout,
        max_retries=max_retries,
        faults=faults,
        shm=shm,
    )
    return outcome.results[axiom.name]
