"""Process-pool fan-out for postulate audits.

The engine turns an audit — every (operator, axiom) pair over one
vocabulary — into chunk-level work units (:mod:`repro.engine.chunks`),
ships the operator roster to pool workers once via the pool initializer,
and evaluates each chunk with the batched machinery
(:mod:`repro.engine.batched` / :mod:`repro.engine.bitops`).

Determinism is the design constraint, parallelism the payoff:

* scenario order is global and reproducible (index ranges / captured RNG
  states), so the merged verdicts do not depend on completion order;
* the reported counterexample is the one at the *smallest* global
  scenario index — with ``stop_at_first`` the merge also reports
  ``scenarios_checked`` as that index + 1, exactly what the serial loop
  would have counted;
* early cancellation under ``stop_at_first`` only ever cancels chunks
  whose first scenario lies *after* the best failure seen so far, so no
  potentially-earlier counterexample is abandoned.

``jobs=1`` never touches the pool or the batched evaluator: it routes
through the legacy scalar harness loop and is bit-identical to it by
construction — including when ``rng`` is a shared ``random.Random``,
which the serial path consumes exactly as a sequence of direct
``check_axiom`` calls would (no planning fast-forward).  Operators that
fail to pickle degrade to the same serial path with a warning rather than
an error.

Fault tolerance is delegated to :mod:`repro.engine.resilience`: chunks
that raise are retried with backoff, hung chunks are reaped via
``chunk_timeout``, a broken pool is respawned with only incomplete chunks
resubmitted, and retry-exhausted chunks are re-evaluated serially in the
parent — so ``run_audit`` returns a complete, deterministic
:class:`AuditOutcome` plus a :class:`~repro.engine.resilience.FailureReport`
even under injected worker failures (:mod:`repro.engine.faults`).

Two orthogonal run-scale layers ride on the same chunk determinism:

* **zero-copy worker start-up** (:mod:`repro.engine.shm`): the parent
  builds each operator's distance matrix (and, for big sweeps over tiny
  universes, the complete apply table) once, publishes them in a
  shared-memory :class:`~repro.engine.shm.Arena`, and workers map
  read-only views instead of rebuilding.  Any attach failure falls back
  to the rebuild path per segment, bit-identically.  ``shm=None`` (the
  default) auto-enables when available; the ``REPRO_SHM`` environment
  variable (``0``/``1``) overrides either way.
* **journaled resume** (:mod:`repro.engine.journal`): with
  ``journal_dir`` every completed chunk is durably recorded; a killed
  sweep resumed with ``resume=True`` replays the records through the
  same min-global-index merge, skips exactly the completed chunks, and
  produces a cell-identical matrix — including ``stop_at_first`` runs,
  where a pre-kill counterexample stays the reported (first) one.
"""

from __future__ import annotations

import os
import pickle
import random
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

try:  # pragma: no cover - numpy is baked into the container
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from repro import obs
from repro.distances import kernels
from repro.engine.batched import BatchedOperator, batching_contract, model_set_of_bits
from repro.engine.bitops import (
    ApplyTable,
    BIT_EVALUATORS,
    full_apply_table,
    supports_table,
)
from repro.engine.chunks import (
    DEFAULT_CHUNK_SIZE,
    ChunkSpec,
    ScenarioPlan,
    decode_chunk,
    plan_fingerprint,
    plan_scenarios,
)
from repro.engine.faults import FaultPlan, trip
from repro.engine.journal import (
    ChunkJournal,
    audit_manifest_config,
    decode_chunk_record,
    encode_chunk_record,
)
from repro.engine.resilience import (
    DEFAULT_MAX_RETRIES,
    FailureReport,
    ResilienceConfig,
    run_resilient,
)
from repro.engine.shm import MIN_SHARED_BYTES, Arena, ArenaView, shm_available
from repro.errors import PostulateError, ReproError
from repro.logic.interpretation import Vocabulary
from repro.operators.base import TheoryChangeOperator
from repro.postulates.axioms import Axiom
from repro.postulates.counterexample import CheckResult, Counterexample

__all__ = [
    "ChunkTask",
    "ChunkOutcome",
    "EngineStats",
    "AuditOutcome",
    "run_audit",
    "check_axiom_parallel",
]


@dataclass(frozen=True)
class ChunkTask:
    """One unit of worker work: a chunk of one (operator, axiom) audit.

    ``attempt`` counts retries (0 on first submission); it exists so the
    deterministic fault hook can target specific attempts and plays no
    part in evaluation itself.
    """

    unit: int
    op_index: int
    axiom: Axiom
    plan_mode: str
    roles: int
    kb_universe: int
    interpretation_count: int
    chunk: ChunkSpec
    attempt: int = 0


@dataclass(frozen=True)
class ChunkOutcome:
    """A worker's verdict on one chunk.

    ``first_offset`` is the in-chunk offset of the earliest failing
    scenario (``chunk.start + first_offset`` is its global index), with
    its reconstructed counterexample.  Cache counters are deltas, so the
    parent can sum them across chunks and workers.

    ``seconds`` is the chunk's worker-side wall time.  When observability
    is active, ``metrics`` carries the worker registry's full snapshot
    and ``(pid, seq)`` let the parent keep only the freshest snapshot per
    worker process (worker registries are cumulative, so the last
    snapshot per worker, merged once, counts everything exactly once).
    """

    unit: int
    ordinal: int
    start: int
    first_offset: Optional[int]
    counterexample: Optional[Counterexample]
    key_hits: int = 0
    key_misses: int = 0
    result_hits: int = 0
    result_misses: int = 0
    seconds: float = 0.0
    pid: int = 0
    seq: int = 0
    metrics: Optional[dict] = None


@dataclass
class EngineStats:
    """Aggregated counters for one engine run.

    ``chunk_seconds`` sums worker-side chunk wall time (CPU-seconds of
    useful work, comparable across job counts); ``elapsed_seconds`` is
    the parent's end-to-end wall time for the run.  The resilience
    counters (``retries`` … ``chunks_degraded``) mirror the attached
    :class:`~repro.engine.resilience.FailureReport`.  ``shm_segments`` /
    ``shm_bytes`` describe the run's shared-memory arena (0 when the
    zero-copy path is off), and ``chunks_skipped`` counts chunks replayed
    from a resume journal instead of evaluated.
    """

    chunks: int = 0
    scenarios: int = 0
    key_hits: int = 0
    key_misses: int = 0
    result_hits: int = 0
    result_misses: int = 0
    chunk_seconds: float = 0.0
    elapsed_seconds: float = 0.0
    serial_fallback: bool = False
    retries: int = 0
    worker_crashes: int = 0
    pool_restarts: int = 0
    chunks_degraded: int = 0
    shm_segments: int = 0
    shm_bytes: int = 0
    chunks_skipped: int = 0


@dataclass
class AuditOutcome:
    """Results keyed ``operator name → axiom name → CheckResult``, plus
    the engine's aggregate counters and the failure report of anything
    the resilience layer had to absorb along the way."""

    results: dict[str, dict[str, CheckResult]] = field(default_factory=dict)
    stats: EngineStats = field(default_factory=EngineStats)
    failures: FailureReport = field(default_factory=FailureReport)


# -- worker side ----------------------------------------------------------------

#: Per-process state: the unpickled vocabulary, batched operator roster,
#: and lazily built apply tables, installed by the pool initializer so
#: every chunk of every audit in the run reuses them.
_WORKER_STATE: Optional[dict] = None


def _build_worker_state(
    vocabulary: Vocabulary,
    operators: Sequence[TheoryChangeOperator],
    arena: Optional[ArenaView] = None,
) -> dict:
    batched = [
        BatchedOperator(
            op,
            vocabulary,
            shared_matrix=None if arena is None else arena.array(f"matrix:{index}"),
        )
        for index, op in enumerate(operators)
    ]
    tables: dict[int, ApplyTable] = {}
    if arena is not None:
        for index, operator in enumerate(batched):
            prefilled = arena.array(f"table:{index}")
            if prefilled is not None and operator.batched:
                tables[index] = ApplyTable(
                    operator, prefilled.shape[0], shared=prefilled
                )
    return {
        "vocabulary": vocabulary,
        "operators": batched,
        "tables": tables,
        # The numpy views above alias the arena's mappings, so the view
        # must stay alive exactly as long as the state does.
        "arena": arena,
    }


#: Monotone per-process counter stamped onto outcomes so the parent can
#: order a worker's registry snapshots without trusting delivery order.
_WORKER_SEQ = 0

#: The fault-injection plan shipped by the parent (tests/chaos lanes
#: only; ``None`` in production runs).
_WORKER_FAULTS: Optional[FaultPlan] = None


def _init_worker(payload: bytes) -> None:
    global _WORKER_STATE, _WORKER_SEQ, _WORKER_FAULTS
    obs_enabled, _WORKER_FAULTS, directory, roster_blob = pickle.loads(payload)
    _WORKER_SEQ = 0
    # Start every worker from a fresh registry — before attaching the
    # arena or building worker state, so mapped-vs-rebuilt work is
    # attributed to this worker.  Under the fork start method the child
    # inherits the parent's counters, and merging an inherited registry
    # back would double-count the parent's history.
    if obs_enabled:
        obs.enable(obs.MetricsRegistry())
    else:
        obs.disable()
    arena: Optional[ArenaView] = None
    if directory is not None:
        arena = ArenaView.attach(directory)
        if roster_blob is None:
            roster_blob = arena.blob("roster")
    if roster_blob is None:
        # The roster was arena-only and its segment failed verification;
        # there is nothing to evaluate against.  Raising routes the run
        # through the resilience ladder down to the parent's serial
        # path, which never needs the arena.
        raise RuntimeError(
            "audit worker: operator roster unavailable (arena attach failed)"
        )
    vocabulary, operators = pickle.loads(roster_blob)
    _WORKER_STATE = _build_worker_state(vocabulary, operators, arena)


def _cache_snapshot(operator: BatchedOperator) -> tuple[int, int, int, int]:
    info = operator.cache_info()
    return (
        info["keys"].hits,
        info["keys"].misses,
        info["results"].hits,
        info["results"].misses,
    )


def evaluate_chunk(state: dict, task: ChunkTask) -> ChunkOutcome:
    """Evaluate one chunk against the worker state.

    Module-level (and state-explicit) so tests can drive the exact worker
    code path in-process.
    """
    vocabulary: Vocabulary = state["vocabulary"]
    operator: BatchedOperator = state["operators"][task.op_index]
    chunk_start = time.perf_counter()
    before = _cache_snapshot(operator)
    plan = ScenarioPlan(
        roles=task.roles,
        interpretation_count=task.interpretation_count,
        kb_universe=task.kb_universe,
        total=task.chunk.start + task.chunk.count,
        mode=task.plan_mode,
        exhaustive=False,
        chunks=(task.chunk,),
    )
    scenarios = decode_chunk(plan, task.chunk)
    first_offset: Optional[int] = None
    counterexample: Optional[Counterexample] = None
    evaluator = BIT_EVALUATORS.get(task.axiom.name)
    if evaluator is not None and supports_table(task.kb_universe):
        tables = state["tables"]
        table = tables.get(task.op_index)
        if table is None:
            table = tables[task.op_index] = ApplyTable(operator, task.kb_universe)
        columns = np.asarray(scenarios, dtype=np.int64).reshape(
            len(scenarios), task.roles
        )
        failures = evaluator(
            table.lookup, *(columns[:, role] for role in range(task.roles))
        )
        failing = np.flatnonzero(failures)
        if failing.size:
            first_offset = int(failing[0])
    else:
        for offset, scenario_bits in enumerate(scenarios):
            scenario = tuple(
                model_set_of_bits(vocabulary, bits) for bits in scenario_bits
            )
            counterexample = task.axiom.check_instance(operator, scenario)
            if counterexample is not None:
                first_offset = offset
                break
    if first_offset is not None and counterexample is None:
        scenario = tuple(
            model_set_of_bits(vocabulary, bits) for bits in scenarios[first_offset]
        )
        counterexample = task.axiom.check_instance(operator, scenario)
        if counterexample is None:  # pragma: no cover - exactness violation
            raise PostulateError(
                f"bit evaluator for {task.axiom.name} flagged a scenario the "
                f"scalar checker accepts (operator {operator.name})"
            )
    after = _cache_snapshot(operator)
    elapsed = time.perf_counter() - chunk_start
    registry = obs.active()
    if registry is not None:
        registry.counter("engine.chunks_completed").inc()
        registry.counter("engine.scenarios").inc(task.chunk.count)
        registry.histogram("engine.chunk_seconds").observe(elapsed)
    return ChunkOutcome(
        unit=task.unit,
        ordinal=task.chunk.ordinal,
        start=task.chunk.start,
        first_offset=first_offset,
        counterexample=counterexample,
        key_hits=after[0] - before[0],
        key_misses=after[1] - before[1],
        result_hits=after[2] - before[2],
        result_misses=after[3] - before[3],
        seconds=elapsed,
    )


def _run_chunk(task: ChunkTask) -> ChunkOutcome:
    global _WORKER_SEQ
    assert _WORKER_STATE is not None, "pool worker used before initialization"
    # Injected faults fire only here — the worker entry point — never in
    # the parent's serial re-evaluation, so degradation always terminates.
    trip(_WORKER_FAULTS, task.unit, task.chunk.ordinal, task.attempt)
    outcome = evaluate_chunk(_WORKER_STATE, task)
    registry = obs.active()
    if registry is None:
        return outcome
    # Ship the worker's cumulative registry with each outcome; the parent
    # keeps only the freshest (pid, seq) snapshot per worker and merges
    # once at the end of the run.
    _WORKER_SEQ += 1
    return replace(
        outcome, pid=os.getpid(), seq=_WORKER_SEQ, metrics=registry.snapshot()
    )


# -- parent side ----------------------------------------------------------------


@dataclass
class _Unit:
    """Parent-side bookkeeping for one (operator, axiom) audit.

    ``op_index`` is the operator's *enumeration* position in the audited
    roster — never recovered via ``operators.index(...)``, which resolves
    equal-comparing operators to the wrong element.
    """

    operator: TheoryChangeOperator
    op_index: int
    axiom: Axiom
    plan: ScenarioPlan
    best_index: Optional[int] = None
    counterexample: Optional[Counterexample] = None

    def absorb(self, outcome: ChunkOutcome) -> bool:
        """Merge a chunk outcome; True iff the best failure improved."""
        if outcome.first_offset is None:
            return False
        index = outcome.start + outcome.first_offset
        if self.best_index is None or index < self.best_index:
            self.best_index = index
            self.counterexample = outcome.counterexample
            return True
        return False

    def to_result(self, stop_at_first: bool) -> CheckResult:
        checked = self.plan.total
        if stop_at_first and self.best_index is not None:
            checked = self.best_index + 1
        return CheckResult(
            axiom=self.axiom.name,
            operator=self.operator.name,
            holds=self.best_index is None,
            scenarios_checked=checked,
            exhaustive=self.plan.exhaustive,
            counterexample=self.counterexample,
            metrics={
                "scenarios_checked": checked,
                "truncated": self.plan.mode == "enumerate"
                and not self.plan.exhaustive,
            },
        )


def _plan_units(
    operators: Sequence[TheoryChangeOperator],
    axioms: Sequence[Axiom],
    vocabulary: Vocabulary,
    max_scenarios: int,
    rng: int | random.Random,
    chunk_size: int,
) -> list[_Unit]:
    """Plan every (operator, axiom) audit in the legacy iteration order.

    An integer seed builds a fresh stream per unit — matching the serial
    harness, where each ``check_axiom`` call seeds its own generator — and
    a shared ``Random`` instance is consumed sequentially in this same
    order, again matching a serial sweep.
    """
    units: list[_Unit] = []
    for op_index, operator in enumerate(operators):
        for axiom in axioms:
            generator = random.Random(rng) if isinstance(rng, int) else rng
            plan = plan_scenarios(
                vocabulary, len(axiom.roles), max_scenarios, generator, chunk_size
            )
            units.append(_Unit(operator, op_index, axiom, plan))
    return units


def _ensure_unique(names: Sequence[str], what: str) -> None:
    """Results are keyed by name; duplicates would silently clobber."""
    seen: set[str] = set()
    duplicates = sorted({name for name in names if name in seen or seen.add(name)})
    if duplicates:
        raise ValueError(
            f"duplicate {what} name(s) in audit roster: {duplicates}; "
            f"results are keyed by name, so every {what} needs a distinct one"
        )


def _serial_audit(
    operators: Sequence[TheoryChangeOperator],
    axioms: Sequence[Axiom],
    vocabulary: Vocabulary,
    max_scenarios: int,
    rng: int | random.Random,
    stop_at_first: bool,
) -> AuditOutcome:
    """The pure-serial fallback: the legacy scalar loop, pair by pair.

    Takes the roster directly — *not* pre-planned units — because
    planning fast-forwards a shared ``Random``; consuming the stream here
    a second time would diverge from direct ``check_axiom`` calls.
    """
    from repro.postulates.harness import check_axiom

    outcome = AuditOutcome(stats=EngineStats(serial_fallback=True))
    shared = rng if isinstance(rng, random.Random) else None
    start = time.perf_counter()
    for operator in operators:
        for axiom in axioms:
            generator = random.Random(rng) if shared is None else shared
            result = check_axiom(
                operator,
                axiom,
                vocabulary,
                max_scenarios=max_scenarios,
                rng=generator,
                stop_at_first=stop_at_first,
            )
            outcome.results.setdefault(operator.name, {})[axiom.name] = result
            outcome.stats.scenarios += result.scenarios_checked
    outcome.stats.elapsed_seconds = time.perf_counter() - start
    registry = obs.active()
    if registry is not None:
        registry.counter("engine.audits").inc()
        registry.histogram("engine.audit_seconds").observe(
            outcome.stats.elapsed_seconds
        )
        if outcome.stats.elapsed_seconds > 0:
            registry.gauge("engine.scenarios_per_second").set(
                outcome.stats.scenarios / outcome.stats.elapsed_seconds
            )
    return outcome


#: Prefilled apply tables are published only for sweeps of at least this
#: many scenarios across all units — below that, each worker's lazy fill
#: touches too few entries for the parent's full-table build to pay off.
TABLE_PREFILL_MIN_SCENARIOS = 4096


def _build_audit_arena(
    vocabulary: Vocabulary,
    operators: Sequence[TheoryChangeOperator],
    roster_blob: bytes,
    units: Sequence[_Unit],
) -> Optional[Arena]:
    """Publish everything pool workers would otherwise rebuild.

    Per matrix-batchable operator: its dense distance matrix, built once
    per *distinct metric* (most standard operators share the Hamming
    matrix; the arena additionally content-deduplicates byte-identical
    payloads onto one OS segment) and, when the sweep is big enough to
    amortize it, the complete apply table
    (:func:`~repro.engine.bitops.full_apply_table`).  The pickled roster
    rides along so pool respawns re-map it instead of re-receiving it.

    Payloads under :data:`~repro.engine.shm.MIN_SHARED_BYTES` are not
    worth their page/attach overhead and are skipped; if that leaves no
    array segment the arena is pointless and ``None`` is returned — the
    run then behaves exactly as before this layer existed.
    """
    arena = Arena()
    try:
        kb_universe = units[0].plan.kb_universe if units else 0
        total_scenarios = sum(unit.plan.total for unit in units)
        prefill = (
            supports_table(kb_universe)
            and total_scenarios >= TABLE_PREFILL_MIN_SCENARIOS
        )
        by_metric: dict[bytes, object] = {}
        for op_index, operator in enumerate(operators):
            contract = batching_contract(operator, vocabulary)
            if contract is None:
                continue
            _, _, metric = contract
            fingerprint = pickle.dumps(metric)
            matrix = by_metric.get(fingerprint)
            if matrix is None:
                all_masks = tuple(range(vocabulary.interpretation_count))
                matrix = np.asarray(
                    kernels.distance_matrix(all_masks, all_masks, vocabulary, metric)
                )
                by_metric[fingerprint] = matrix
            if matrix.nbytes >= MIN_SHARED_BYTES:
                arena.publish_array(f"matrix:{op_index}", matrix)
            if prefill:
                batched = BatchedOperator(operator, vocabulary, shared_matrix=matrix)
                table = full_apply_table(batched, kb_universe)
                if table.nbytes >= MIN_SHARED_BYTES:
                    arena.publish_array(f"table:{op_index}", table)
        if not any(spec.dtype is not None for spec in arena.directory().segments):
            arena.close()
            return None
        arena.publish_bytes("roster", roster_blob)
        return arena
    except Exception:
        arena.close()
        raise


def run_audit(
    operators: Sequence[TheoryChangeOperator],
    axioms: Sequence[Axiom],
    vocabulary: Vocabulary,
    max_scenarios: int = 50_000,
    rng: int | random.Random = 0,
    stop_at_first: bool = True,
    jobs: int = 1,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    chunk_timeout: Optional[float] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    faults: Optional[FaultPlan] = None,
    shm: Optional[bool] = None,
    journal_dir: Optional[str | os.PathLike] = None,
    resume: bool = False,
) -> AuditOutcome:
    """Audit every operator against every axiom, fanned out over ``jobs``
    pool workers (``jobs=1``: the legacy serial loop, bit-identical to
    calling :func:`repro.postulates.harness.check_axiom` per pair).

    ``chunk_timeout`` (seconds, ``None`` = off) reaps hung chunks;
    ``max_retries`` bounds worker-side attempts per chunk before the
    parent re-evaluates it serially; ``faults`` injects deterministic
    failures for testing (defaults to the ``REPRO_FAULTS`` environment
    plan, if any).

    ``shm`` selects the zero-copy arena path (``None`` = auto when
    available; the ``REPRO_SHM`` env var, ``0``/``1``, overrides both).
    ``journal_dir`` makes the sweep resumable: every completed chunk is
    durably journaled there, and ``resume=True`` replays a prior
    journal's chunks — refusing on any configuration mismatch — before
    evaluating only what remains.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    _ensure_unique([operator.name for operator in operators], "operator")
    _ensure_unique([axiom.name for axiom in axioms], "axiom")
    if resume and journal_dir is None:
        raise ReproError("resume requires a journal directory")
    if journal_dir is not None:
        if jobs == 1:
            raise ReproError(
                "journaled audits need the chunked engine: pass jobs >= 2 "
                "(the serial path has no chunk boundaries to journal)"
            )
        if not isinstance(rng, int):
            raise ReproError(
                "journaled audits need an integer seed: a shared Random "
                "instance has no stable identity across processes, so its "
                "journal could not be validated or resumed"
            )
    # The serial path must see the caller's RNG untouched: planning
    # fast-forwards a shared stream, so it happens only on pool paths.
    if jobs == 1:
        return _serial_audit(
            operators, axioms, vocabulary, max_scenarios, rng, stop_at_first
        )
    if faults is None:
        faults = FaultPlan.from_env()
    # One serialization per run (satellite contract): these bytes are
    # reused verbatim — inside the initializer payload or mapped from the
    # arena — by every pool (re)spawn, never re-pickled.
    try:
        roster_blob = pickle.dumps((vocabulary, list(operators)))
    except Exception as error:  # pickling contract violated by a custom operator
        if journal_dir is not None:
            raise ReproError(
                f"journaled audit: operator roster does not pickle ({error}); "
                "the serial fallback cannot honor a chunk journal"
            ) from error
        warnings.warn(
            f"audit engine: operator roster does not pickle ({error}); "
            "falling back to the serial harness",
            RuntimeWarning,
            stacklevel=2,
        )
        return _serial_audit(
            operators, axioms, vocabulary, max_scenarios, rng, stop_at_first
        )
    units = _plan_units(operators, axioms, vocabulary, max_scenarios, rng, chunk_size)

    outcome = AuditOutcome()
    stats = outcome.stats
    run_start = time.perf_counter()

    journal: Optional[ChunkJournal] = None
    completed: set[tuple[int, int]] = set()
    if journal_dir is not None:
        journal = ChunkJournal(journal_dir)
        manifest_config = audit_manifest_config(
            vocabulary,
            [operator.name for operator in operators],
            [axiom.name for axiom in axioms],
            max_scenarios,
            rng,
            stop_at_first,
            chunk_size,
            [plan_fingerprint(unit.plan) for unit in units],
        )
        if resume:
            journal.validate(manifest_config)
            for record in journal.records():
                kwargs = decode_chunk_record(vocabulary, record)
                unit_id, ordinal = kwargs["unit"], kwargs["ordinal"]
                if not 0 <= unit_id < len(units):
                    raise ReproError(
                        f"audit journal names unknown unit {unit_id}"
                    )
                if not 0 <= ordinal < len(units[unit_id].plan.chunks):
                    raise ReproError(
                        f"audit journal names unknown chunk {ordinal} "
                        f"of unit {unit_id}"
                    )
                if (unit_id, ordinal) in completed:
                    continue
                completed.add((unit_id, ordinal))
                # Replaying through the live run's own merge is what keeps
                # a pre-kill counterexample FIRST: its global scenario
                # index wins against anything found after the resume, and
                # may_skip prunes accordingly.
                units[unit_id].absorb(ChunkOutcome(**kwargs))
        else:
            journal.initialize(manifest_config)
    stats.chunks_skipped = len(completed)

    env_shm = os.environ.get("REPRO_SHM", "").strip()
    if env_shm in {"0", "1"}:
        shm = env_shm == "1"
    if shm is None:
        use_shm = shm_available()
    elif shm and not shm_available():
        warnings.warn(
            "audit engine: shared-memory arenas unavailable (numpy or "
            "multiprocessing.shared_memory missing); workers will rebuild "
            "their state",
            RuntimeWarning,
            stacklevel=2,
        )
        use_shm = False
    else:
        use_shm = shm
    arena: Optional[Arena] = None
    if use_shm:
        arena = _build_audit_arena(vocabulary, operators, roster_blob, units)
    directory = arena.directory() if arena is not None else None
    roster_in_arena = directory is not None and directory.find("roster") is not None
    payload = pickle.dumps(
        (obs.enabled(), faults, directory, None if roster_in_arena else roster_blob)
    )
    if arena is not None:
        stats.shm_segments = arena.segment_count
        stats.shm_bytes = arena.bytes_published
    # Freshest worker registry snapshot per pid: {pid: (seq, snapshot)}.
    worker_metrics: dict[int, tuple[int, dict]] = {}
    context = None
    try:
        import multiprocessing

        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
    except ImportError:  # pragma: no cover
        pass

    def make_executor() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_init_worker,
            initargs=(payload,),
            mp_context=context,
        )

    def handle_outcome(task: ChunkTask, chunk_outcome: ChunkOutcome) -> bool:
        unit = units[chunk_outcome.unit]
        stats.chunks += 1
        stats.scenarios += task.chunk.count
        stats.key_hits += chunk_outcome.key_hits
        stats.key_misses += chunk_outcome.key_misses
        stats.result_hits += chunk_outcome.result_hits
        stats.result_misses += chunk_outcome.result_misses
        stats.chunk_seconds += chunk_outcome.seconds
        if chunk_outcome.metrics is not None:
            stored = worker_metrics.get(chunk_outcome.pid)
            if stored is None or chunk_outcome.seq > stored[0]:
                worker_metrics[chunk_outcome.pid] = (
                    chunk_outcome.seq,
                    chunk_outcome.metrics,
                )
        if journal is not None:
            # Durably record the chunk before merging it, so the journal
            # only ever names chunks that were fully evaluated.
            journal.append_chunk(encode_chunk_record(chunk_outcome, task.chunk.count))
        return unit.absorb(chunk_outcome)

    def may_skip(task: ChunkTask) -> bool:
        # Only chunks that start *after* the unit's best failure can be
        # skipped: an earlier chunk may still hold the globally first
        # counterexample.
        unit = units[task.unit]
        return (
            stop_at_first
            and unit.best_index is not None
            and task.chunk.start > unit.best_index
        )

    parent_state: dict = {}

    def serial_eval(task: ChunkTask) -> ChunkOutcome:
        # Last-resort degradation: the parent evaluates the chunk with
        # the exact worker code path (fault injection never fires here).
        if not parent_state:
            parent_state.update(
                _build_worker_state(
                    vocabulary,
                    list(operators),
                    None if arena is None else arena.view(),
                )
            )
        return evaluate_chunk(parent_state, task)

    def on_restart() -> None:
        # A respawned pool's workers re-attach the same arena names; a
        # vanished segment would mean silent rebuild storms in every new
        # worker, so surface it (attaches still degrade gracefully).
        if arena is None:
            return
        missing = arena.verify()
        if missing:
            warnings.warn(
                f"audit engine: {len(missing)} arena segment(s) vanished "
                "across a pool restart; respawned workers will rebuild "
                "locally",
                RuntimeWarning,
                stacklevel=2,
            )

    tasks = [
        ChunkTask(
            unit=unit_id,
            op_index=unit.op_index,
            axiom=unit.axiom,
            plan_mode=unit.plan.mode,
            roles=unit.plan.roles,
            kb_universe=unit.plan.kb_universe,
            interpretation_count=unit.plan.interpretation_count,
            chunk=chunk,
        )
        for unit_id, unit in enumerate(units)
        for chunk in unit.plan.chunks
        if (unit_id, chunk.ordinal) not in completed
    ]
    config = ResilienceConfig(chunk_timeout=chunk_timeout, max_retries=max_retries)
    try:
        with obs.span("engine.run_audit", jobs=jobs, units=len(units)):
            outcome.failures = run_resilient(
                tasks,
                _run_chunk,
                make_executor,
                handle_outcome,
                may_skip,
                serial_eval,
                config,
                metric_prefix="engine.",
                on_restart=on_restart,
            )
    finally:
        # The sole unlink point: workers (dead or alive) never own the
        # names, so closing here on every exit path keeps /dev/shm clean.
        if arena is not None:
            arena.close()
    stats.retries = outcome.failures.retries
    stats.worker_crashes = outcome.failures.worker_crashes
    stats.pool_restarts = outcome.failures.pool_restarts
    stats.chunks_degraded = outcome.failures.chunks_degraded
    stats.elapsed_seconds = time.perf_counter() - run_start
    registry = obs.active()
    if registry is not None:
        # Fold each worker's registry into the parent exactly once, then
        # record the parent-side aggregates for this run.
        for _, snapshot in worker_metrics.values():
            registry.merge_snapshot(snapshot)
        registry.counter("engine.audits").inc()
        registry.gauge("engine.shm_segments").set(stats.shm_segments)
        if arena is not None:
            # Ensure the worker-side arena counters exist in the payload
            # even when every attach succeeded with nothing to count.
            registry.counter("engine.shm_bytes_mapped")
            registry.counter("engine.shm_attach_failures")
        if stats.chunks_skipped:
            registry.counter("engine.chunks_skipped_resume").inc(
                stats.chunks_skipped
            )
        registry.histogram("engine.audit_seconds").observe(stats.elapsed_seconds)
        if stats.elapsed_seconds > 0:
            registry.gauge("engine.scenarios_per_second").set(
                stats.scenarios / stats.elapsed_seconds
            )
    for unit in units:
        outcome.results.setdefault(unit.operator.name, {})[
            unit.axiom.name
        ] = unit.to_result(stop_at_first)
    return outcome


def check_axiom_parallel(
    operator: TheoryChangeOperator,
    axiom: Axiom,
    vocabulary: Vocabulary,
    max_scenarios: int = 50_000,
    rng: int | random.Random = 0,
    stop_at_first: bool = True,
    jobs: int = 2,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    chunk_timeout: Optional[float] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    faults: Optional[FaultPlan] = None,
    shm: Optional[bool] = None,
) -> CheckResult:
    """Parallel counterpart of :func:`repro.postulates.harness.check_axiom`
    for a single (operator, axiom) pair."""
    outcome = run_audit(
        [operator],
        [axiom],
        vocabulary,
        max_scenarios=max_scenarios,
        rng=rng,
        stop_at_first=stop_at_first,
        jobs=jobs,
        chunk_size=chunk_size,
        chunk_timeout=chunk_timeout,
        max_retries=max_retries,
        faults=faults,
        shm=shm,
    )
    return outcome.results[operator.name][axiom.name]
