"""Vectorized axiom evaluation on packed knowledge bases.

A knowledge base over a vocabulary with ``k`` interpretations is one
integer in ``[0, 2^k)`` (bit ``m`` set ⇔ mask ``m`` is a model), so the
model-set algebra every axiom checker performs — intersection, union,
subset, emptiness — collapses to ``&``, ``|``, ``x & ~y == 0``, and
``x == 0`` on whole numpy ``int64`` arrays of scenarios at once.

Each evaluator takes a *lookup* — an elementwise vectorized
``ψ-bits, μ-bits → result-bits`` of the operator under audit — plus one
array per axiom role, and returns a boolean array marking the failing
scenarios of the chunk.  The formulas transcribe the scalar checkers in
:mod:`repro.postulates.axioms` literally (including their guard clauses,
which become boolean conjuncts), so a ``True`` entry is exactly a scenario
on which ``Axiom.check_instance`` returns a counterexample.

:class:`ApplyTable` supplies the lookup: a lazily-filled dense
``universe × universe`` table over a :class:`~repro.engine.batched.
BatchedOperator`, viable whenever the knowledge-base universe is small
(|𝒯| ≤ 3 ⇒ at most 256 × 256 entries).  Larger universes use the scalar
chunk loop in :mod:`repro.engine.pool` instead.
"""

from __future__ import annotations

try:  # pragma: no cover - numpy is baked into the container
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from repro.engine.batched import BatchedOperator

__all__ = [
    "ApplyTable",
    "BIT_EVALUATORS",
    "TABLE_UNIVERSE_LIMIT",
    "full_apply_table",
    "supports_table",
]

#: Largest knowledge-base universe (2^(2^|𝒯|)) for which the dense apply
#: table is built: 256 × 256 int64 = 512 KiB, i.e. vocabularies of ≤ 3
#: atoms — the regime every shipped audit runs in.
TABLE_UNIVERSE_LIMIT = 256


def supports_table(kb_universe: int) -> bool:
    """Whether the dense-table path applies to this universe size."""
    return np is not None and kb_universe <= TABLE_UNIVERSE_LIMIT


class ApplyTable:
    """Dense memo of ``operator.apply_bits`` over the whole KB universe.

    Entries are filled on demand: a lookup over a chunk first resolves the
    distinct missing (ψ, μ) pairs through the batched operator, then
    answers the whole chunk with one fancy-indexing read.  ``-1`` marks
    an unfilled entry (valid results are non-negative bit-vectors).
    """

    def __init__(self, operator: BatchedOperator, kb_universe: int, shared=None):
        if not supports_table(kb_universe):
            raise ValueError(
                f"apply table unsupported for universe of {kb_universe} knowledge bases"
            )
        self._operator = operator
        if shared is not None and getattr(shared, "shape", None) == (
            kb_universe,
            kb_universe,
        ):
            # A fully prefilled arena table (see full_apply_table): may be
            # a read-only shared-memory view; lookups then never write.
            self._table = shared
        else:
            self._table = np.full((kb_universe, kb_universe), -1, dtype=np.int64)

    @property
    def operator(self) -> BatchedOperator:
        """The batched operator backing the table."""
        return self._operator

    @property
    def filled(self) -> int:
        """Number of entries resolved so far."""
        return int((self._table >= 0).sum())

    def lookup(self, psi_bits, mu_bits):
        """Elementwise ``apply_bits`` over two equal-length int64 arrays."""
        values = self._table[psi_bits, mu_bits]
        missing = values < 0
        if missing.any():
            if not self._table.flags.writeable:
                # A shared prefilled table is complete by construction;
                # reaching here means it was built for another contract —
                # degrade to a private copy rather than corrupt (or crash
                # on) the read-only mapping.
                self._table = self._table.copy()
            pairs = np.unique(
                np.stack([psi_bits[missing], mu_bits[missing]], axis=1), axis=0
            )
            for psi, mu in pairs.tolist():
                self._table[psi, mu] = self._operator.apply_bits(psi, mu)
            values = self._table[psi_bits, mu_bits]
        return values


def full_apply_table(operator: BatchedOperator, kb_universe: int):
    """The *complete* ``apply_bits`` table of a matrix-batched operator.

    Built once in the parent (one vectorized pass per satisfiable ψ) so
    an arena can publish it and workers skip the lazy per-worker fill.
    Exactness: for each ψ the operator's own memoized key vector is
    rank-converted (keys may be scalars or tuples — ``leximax``/``row``
    aggregators — so comparison order, not magnitude, is what matters)
    and every μ's minimal-key models are selected with the same
    all-argmin tie rule as ``BatchedOperator._compute_bits``; the ψ = 0
    row replicates the family-dependent unsatisfiable-ψ branch.
    """
    if not supports_table(kb_universe):
        raise ValueError(
            f"apply table unsupported for universe of {kb_universe} knowledge bases"
        )
    if not operator.batched:
        raise ValueError(
            f"full_apply_table needs a matrix-batched operator, got {operator.name!r}"
        )
    n_masks = operator.vocabulary.interpretation_count
    mask_index = np.arange(n_masks, dtype=np.int64)
    mu_values = np.arange(kb_universe, dtype=np.int64)
    # member[mu, m] ⇔ interpretation mask m is a model of μ.
    member = ((mu_values[:, None] >> mask_index[None, :]) & 1).astype(bool)
    weights = np.int64(1) << mask_index
    sentinel = np.iinfo(np.int64).max
    table = np.empty((kb_universe, kb_universe), dtype=np.int64)
    table[0, :] = 0 if operator.unsat_base == "empty" else mu_values
    for psi_bits in range(1, kb_universe):
        keys = operator.keys_for_bits(psi_bits)
        order = {key: rank for rank, key in enumerate(sorted(set(keys)))}
        ranks = np.array([order[key] for key in keys], dtype=np.int64)
        keyed = np.where(member, ranks[None, :], sentinel)
        best = keyed.min(axis=1)
        # μ = 0 rows have no members, so best stays at the sentinel and
        # the selection below is empty — exactly apply_bits' μ = 0 → 0.
        table[psi_bits, :] = ((keyed == best[:, None]) & member) @ weights
    return table


# -- per-axiom failure predicates ---------------------------------------------
#
# Each function mirrors one scalar checker; `L` is the vectorized lookup.
# All arrays are int64 KB bit-vectors; `~` is safe because every result is
# ANDed against a genuine KB value before comparison.


def _fail_success(L, psi, mu):
    # R1/U1/A1: result must imply μ.
    return (L(psi, mu) & ~mu) != 0


def _fail_r2(L, psi, mu):
    both = psi & mu
    return (both != 0) & (L(psi, mu) != both)


def _fail_r3(L, psi, mu):
    return (mu != 0) & (L(psi, mu) == 0)


def _fail_joint(L, psi, mu):
    # U3/A3: satisfiable ψ and μ must give a satisfiable result.
    return (psi != 0) & (mu != 0) & (L(psi, mu) == 0)


def _fail_conj_lower(L, psi, mu, phi):
    # R5/U5/A5: (ψ*μ) ∧ φ implies ψ*(μ∧φ).
    left = L(psi, mu) & phi
    return (left & ~L(psi, mu & phi)) != 0


def _fail_conj_upper(L, psi, mu, phi):
    # R6/A6: if (ψ*μ) ∧ φ satisfiable, ψ*(μ∧φ) implies it.
    left = L(psi, mu) & phi
    return (left != 0) & ((L(psi, mu & phi) & ~left) != 0)


def _fail_u2(L, psi, mu):
    return ((psi & ~mu) == 0) & (L(psi, mu) != psi)


def _fail_u6(L, psi, mu1, mu2):
    result1 = L(psi, mu1)
    result2 = L(psi, mu2)
    return (
        ((result1 & ~mu2) == 0) & ((result2 & ~mu1) == 0) & (result1 != result2)
    )


def _fail_u7(L, psi, mu1, mu2):
    singleton = (psi != 0) & ((psi & (psi - 1)) == 0)
    left = L(psi, mu1) & L(psi, mu2)
    return singleton & ((left & ~L(psi, mu1 | mu2)) != 0)


def _fail_u8(L, psi1, psi2, mu):
    return L(psi1 | psi2, mu) != (L(psi1, mu) | L(psi2, mu))


def _fail_a2(L, psi, mu):
    return (psi == 0) & (L(psi, mu) != 0)


def _fail_a7(L, psi1, psi2, mu):
    left = L(psi1, mu) & L(psi2, mu)
    return (left & ~L(psi1 | psi2, mu)) != 0


def _fail_a8(L, psi1, psi2, mu):
    left = L(psi1, mu) & L(psi2, mu)
    return (left != 0) & ((L(psi1 | psi2, mu) & ~left) != 0)


#: Axiom name → vectorized failure predicate.  Covers every axiom in the
#: registries; R4/U4/A4 are formula-level and never reach the harness.
BIT_EVALUATORS = {
    "R1": _fail_success,
    "R2": _fail_r2,
    "R3": _fail_r3,
    "R5": _fail_conj_lower,
    "R6": _fail_conj_upper,
    "U1": _fail_success,
    "U2": _fail_u2,
    "U3": _fail_joint,
    "U5": _fail_conj_lower,
    "U6": _fail_u6,
    "U7": _fail_u7,
    "U8": _fail_u8,
    "A1": _fail_success,
    "A2": _fail_a2,
    "A3": _fail_joint,
    "A5": _fail_conj_lower,
    "A6": _fail_conj_upper,
    "A7": _fail_a7,
    "A8": _fail_a8,
}
