"""Shared execution contexts: one engine per ``(operator, vocabulary, backend)``.

The execution tiers each maintain their own heavy shared state — the
dense tier one ``2^|T| × 2^|T|`` distance matrix plus bounded key/result
caches per operator (:class:`~repro.engine.batched.BatchedOperator`), the
symbolic tier one hash-consed node store per vocabulary
(:func:`repro.logic.bdd.manager_for`).  Before this module, every call
site wired that state up itself, so two callers changing theories over
the same vocabulary each paid for (and failed to share) the same matrix.

:class:`ContextRegistry` is the one place that wiring now lives: it
resolves ``(operator, vocabulary, impl)`` to a cached
:class:`ExecutionContext` through an LRU bound
(:class:`~repro.orders.cache.AssignmentCache`, surfacing
``cache.session.contexts.*`` observability counters), so concurrent
sessions over one vocabulary coalesce onto one engine.  The serving
layer's cross-request micro-batching is this registry plus a queue.

Exactness: a context answers *identically* to calling the wrapped
operator directly — dense contexts go through ``BatchedOperator`` (whose
results are pinned bit-identical to the legacy path by the engine suite)
and symbolic contexts through the very executors ``impl="symbolic"``
always used.  ``tests/test_session.py`` regression-pins this per
operator and per backend.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.engine.batched import BatchedOperator
from repro.logic.enumeration import form_formula, models
from repro.logic.interpretation import Vocabulary
from repro.logic.semantics import ModelSet
from repro.logic.syntax import Formula
from repro.operators.base import TheoryChangeOperator
from repro.orders.cache import AssignmentCache, CacheInfo
from repro.session.dispatch import AUTO, DENSE, SYMBOLIC, resolve_backend

__all__ = [
    "DEFAULT_MAX_CONTEXTS",
    "ExecutionContext",
    "ContextRegistry",
    "context_for",
    "default_registry",
    "clear_contexts",
]

#: Bound on simultaneously cached execution contexts.  A dense context
#: holds its distance matrix (16 MiB at the 12-atom cap) plus bounded
#: caches; the registry bound — not the per-context caches — is the
#: memory ceiling, mirroring the BDD manager registry's design.
DEFAULT_MAX_CONTEXTS = 16


def context_key(
    operator: TheoryChangeOperator, vocabulary: Vocabulary, backend: str
) -> tuple:
    """The registry key: operator *configuration*, not instance identity.

    Two freshly constructed ``DalalRevision()`` objects are the same
    configuration and must share one context (that sharing is the whole
    point of the registry); the class is part of the key so a user
    operator that happens to reuse a built-in name cannot alias it.
    """
    return (type(operator).__qualname__, operator.name, vocabulary, backend)


class ExecutionContext:
    """One resolved engine for ``(operator, vocabulary, backend)``.

    Dense contexts own a shared :class:`BatchedOperator` (one distance
    matrix, bounded key/result caches); symbolic contexts execute on the
    persistent per-vocabulary BDD manager.  Both expose the same two
    calls — model-set application and formula application — with results
    identical to the un-shared code paths they replace.
    """

    __slots__ = ("operator", "vocabulary", "backend", "_batched", "_symbolic")

    def __init__(
        self,
        operator: TheoryChangeOperator,
        vocabulary: Vocabulary,
        backend: str,
    ):
        if backend not in (DENSE, SYMBOLIC):
            raise ValueError(f"unresolved backend {backend!r}")
        self.operator = operator
        self.vocabulary = vocabulary
        self.backend = backend
        self._batched: Optional[BatchedOperator] = None
        self._symbolic = None
        if backend == DENSE:
            self._batched = BatchedOperator(operator, vocabulary)
        else:
            from repro.symbolic import SymbolicOperator

            # Raises the symbolic tier's precise refusal for operators
            # without a level-walk execution.
            self._symbolic = SymbolicOperator(operator)

    @property
    def engine(self):
        """The underlying shared engine (``BatchedOperator`` or
        ``SymbolicOperator``)."""
        return self._batched if self._batched is not None else self._symbolic

    def _lift(self, model_set: ModelSet):
        from repro.logic.bdd import manager_for
        from repro.symbolic import lift_model_set

        return lift_model_set(manager_for(self.vocabulary), model_set)

    def apply_model_sets(self, psi: ModelSet, mu: ModelSet) -> ModelSet:
        """``Mod(ψ * μ)`` — answer-identical to
        ``operator.apply_models(psi, mu)`` on either backend."""
        if self._batched is not None:
            return self._batched.apply_models(psi, mu)
        result = self._symbolic.apply_models(self._lift(psi), self._lift(mu))
        return result.to_model_set()

    def merge_model_sets(self, sources: list[ModelSet]) -> ModelSet:
        """N-ary consensus for arbitration operators (``merge_models``)."""
        merge = getattr(self.operator, "merge_models", None)
        if merge is None:
            raise ValueError(
                f"operator {self.operator.name!r} has no n-ary merge"
            )
        if self._batched is not None:
            # merge_models routes through the fitting's apply_models; the
            # shared-matrix saving lives in session-level fitting proxies,
            # so the direct call here is already answer-identical.
            return merge(sources)
        from repro.symbolic import merge_models_symbolic

        result = merge_models_symbolic(
            self.operator, [self._lift(source) for source in sources]
        )
        return result.to_model_set()

    def apply(self, psi: Formula, mu: Formula) -> Formula:
        """Formula-level application — answer-identical to
        ``operator.apply(psi, mu, vocabulary, impl=backend)``."""
        if self._symbolic is not None:
            from repro.symbolic import apply_symbolic

            return apply_symbolic(self.operator, psi, mu, self.vocabulary)
        psi_models = models(psi, self.vocabulary)
        mu_models = models(mu, self.vocabulary)
        result = self.apply_model_sets(psi_models, mu_models)
        return form_formula(result)

    def cache_info(self):
        """Statistics of the context's shared caches (dense only)."""
        return self._batched.cache_info() if self._batched is not None else None

    def __repr__(self) -> str:
        return (
            f"<ExecutionContext {self.operator.name!r} "
            f"{self.backend} |T|={self.vocabulary.size}>"
        )


class ContextRegistry:
    """LRU-bounded resolver of shared :class:`ExecutionContext` objects.

    Thread-safe: lookups go through an :class:`AssignmentCache` (its
    builder runs outside the lock; contexts are pure configuration, so a
    rare double-build is harmless and last-write-wins).
    """

    def __init__(self, max_contexts: int = DEFAULT_MAX_CONTEXTS):
        self._cache = AssignmentCache(
            maxsize=max_contexts, name="session.contexts"
        )

    def context_for(
        self,
        operator: TheoryChangeOperator,
        vocabulary: Vocabulary,
        impl: str = AUTO,
    ) -> ExecutionContext:
        """The shared context for the resolved backend (LRU-cached)."""
        backend = resolve_backend(operator, vocabulary, impl)
        key = context_key(operator, vocabulary, backend)
        return self._cache.get_or_build(
            key, lambda _key: ExecutionContext(operator, vocabulary, backend)
        )

    def cache_info(self) -> CacheInfo:
        """Hit/miss/eviction statistics of the context LRU."""
        return self._cache.cache_info()

    def clear(self) -> None:
        """Drop every cached context (tests / memory-pressure escape)."""
        self._cache.clear()


_default_lock = threading.Lock()
_default: Optional[ContextRegistry] = None


def default_registry() -> ContextRegistry:
    """The process-wide registry (created on first use)."""
    global _default
    with _default_lock:
        if _default is None:
            _default = ContextRegistry()
        return _default


def context_for(
    operator: TheoryChangeOperator, vocabulary: Vocabulary, impl: str = AUTO
) -> ExecutionContext:
    """Resolve through the process-wide registry."""
    return default_registry().context_for(operator, vocabulary, impl)


def clear_contexts() -> None:
    """Clear the process-wide registry (tests)."""
    registry = _default
    if registry is not None:
        registry.clear()
