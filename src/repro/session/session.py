"""Long-lived theory-change sessions over shared execution contexts.

A :class:`Session` is the unit the serving layer holds per client: a
knowledge base (Boolean :class:`~repro.kb.knowledge_base.KnowledgeBase`
or weighted :class:`~repro.core.weighted.WeightedKnowledgeBase`), the
operator configuration chosen at creation, and a route to the shared
:class:`~repro.session.registry.ContextRegistry` so that every change —
revise, update, fit, arbitrate, merge — executes on the one engine
context for its ``(operator, vocabulary)`` instead of rebuilding distance
matrices per call.

The knowledge base stays immutable; the session is the mutable cursor
over its states, so ``session.kb.history`` is the full provenance log.
Results are answer-identical to calling the knowledge-base verbs with
plain operators (``tests/test_session.py`` pins this): the context proxy
merely swaps *where* the arithmetic happens, never *what* it computes.
"""

from __future__ import annotations

import re
from typing import Callable, Mapping, Optional, Sequence, Union

from repro.core.arbitration import ArbitrationOperator
from repro.core.fitting import PriorityFitting, ReveszFitting
from repro.core.weighted import (
    WeightedArbitration,
    WeightedKnowledgeBase,
    WeightedModelFitting,
)
from repro.errors import ReproError
from repro.kb.knowledge_base import ChangeRecord, KnowledgeBase
from repro.logic.enumeration import form_formula, models
from repro.logic.parser import parse
from repro.logic.syntax import Formula
from repro.operators.base import TheoryChangeOperator
from repro.operators.revision import (
    BorgidaRevision,
    DalalRevision,
    SatohRevision,
    WeberRevision,
)
from repro.operators.update import ForbusUpdate, WinslettUpdate
from repro.session.dispatch import AUTO, ensure_impl
from repro.session.registry import (
    ContextRegistry,
    ExecutionContext,
    default_registry,
)

__all__ = [
    "OPERATOR_FACTORIES",
    "DEFAULT_OPERATOR_NAMES",
    "operator_by_name",
    "Session",
    "WeightedSession",
]

FormulaLike = Union[str, Formula]

#: Name → constructor for every dispatchable operator.  The CLI's
#: ``change`` command and the serving layer both resolve through this
#: single table.
OPERATOR_FACTORIES: Mapping[str, Callable[[], TheoryChangeOperator]] = {
    "dalal": DalalRevision,
    "satoh": SatohRevision,
    "borgida": BorgidaRevision,
    "weber": WeberRevision,
    "winslett": WinslettUpdate,
    "forbus": ForbusUpdate,
    "odist": ReveszFitting,
    "priority": PriorityFitting,
}

#: Per-verb defaults, matching ``KnowledgeBase``'s own defaults.
DEFAULT_OPERATOR_NAMES: Mapping[str, str] = {
    "revision": "dalal",
    "update": "winslett",
    "fitting": "odist",
}

_SESSION_ID = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def operator_by_name(name: str) -> TheoryChangeOperator:
    """Instantiate a dispatchable operator by its short name."""
    factory = OPERATOR_FACTORIES.get(name)
    if factory is None:
        raise ReproError(
            f"unknown operator {name!r}; known: {sorted(OPERATOR_FACTORIES)}"
        )
    return factory()


def validate_session_id(session_id: str) -> str:
    """Session ids double as store file names; keep them path-safe."""
    if not isinstance(session_id, str) or not _SESSION_ID.match(session_id):
        raise ReproError(
            f"invalid session id {session_id!r}: expected 1-64 chars of "
            "[A-Za-z0-9._-] not starting with a dot or dash"
        )
    return session_id


def _as_formula(source: FormulaLike) -> Formula:
    return parse(source) if isinstance(source, str) else source


class _ContextOperator(TheoryChangeOperator):
    """An operator proxy that executes through the shared registry.

    Carries the inner operator's identity (name, family) so provenance
    records and reports are unchanged; ``apply_models`` resolves the
    execution context lazily from the model sets' vocabulary, so one
    proxy serves a knowledge base for its whole life.
    """

    __slots__ = ("_inner", "_registry", "_impl", "_contexts")

    def __init__(
        self,
        inner: TheoryChangeOperator,
        registry: ContextRegistry,
        impl: str = AUTO,
    ):
        self._inner = inner
        self._registry = registry
        self._impl = impl
        self._contexts: dict = {}
        self.name = inner.name
        self.family = inner.family

    @property
    def inner(self) -> TheoryChangeOperator:
        return self._inner

    def context(self, vocabulary) -> ExecutionContext:
        context = self._contexts.get(vocabulary)
        if context is None:
            context = self._registry.context_for(
                self._inner, vocabulary, self._impl
            )
            self._contexts[vocabulary] = context
        return context

    def apply_models(self, psi, mu):
        self._check_vocabularies(psi, mu)
        return self.context(psi.vocabulary).apply_model_sets(psi, mu)


class Session:
    """One client's Boolean theory-change session.

    >>> session = Session("jury-1", atoms=["A", "B", "C"],
    ...                   formula="A & B & (A & B -> C)")
    >>> session.revise("!C")              # doctest: +ELLIPSIS
    <...>
    >>> session.kb.satisfiable
    True
    """

    kind = "boolean"

    def __init__(
        self,
        session_id: str,
        atoms: Sequence[str],
        formula: FormulaLike = "true",
        operators: Optional[Mapping[str, str]] = None,
        impl: str = AUTO,
        registry: Optional[ContextRegistry] = None,
        _kb: Optional[KnowledgeBase] = None,
    ):
        self.session_id = validate_session_id(session_id)
        ensure_impl(impl)
        self._impl = impl
        self._registry = registry if registry is not None else default_registry()
        names = dict(DEFAULT_OPERATOR_NAMES)
        names.update(operators or {})
        unknown = set(names) - set(DEFAULT_OPERATOR_NAMES)
        if unknown:
            raise ReproError(
                f"unknown operator roles {sorted(unknown)}; "
                f"expected {sorted(DEFAULT_OPERATOR_NAMES)}"
            )
        self._operator_names = names
        self._revision = self._proxy(names["revision"])
        self._update = self._proxy(names["update"])
        self._fitting = self._proxy(names["fitting"])
        if _kb is not None:
            self._kb = _kb
        else:
            self._kb = KnowledgeBase(
                formula,
                atoms=list(atoms),
                revision=self._revision,
                update=self._update,
                fitting=self._fitting,
            )

    def _proxy(self, name: str) -> _ContextOperator:
        return _ContextOperator(operator_by_name(name), self._registry, self._impl)

    # -- inspection ---------------------------------------------------------

    @property
    def kb(self) -> KnowledgeBase:
        """The current knowledge-base state."""
        return self._kb

    @property
    def vocabulary(self):
        return self._kb.vocabulary

    @property
    def operator_names(self) -> Mapping[str, str]:
        """The per-verb operator configuration."""
        return dict(self._operator_names)

    @property
    def impl(self) -> str:
        return self._impl

    def state(self) -> dict:
        """The JSON-friendly session summary the serving layer returns."""
        return {
            "id": self.session_id,
            "kind": self.kind,
            "atoms": list(self.vocabulary.atoms),
            "operators": dict(self._operator_names),
            "formula": str(self._kb.to_formula()),
            "models": len(self._kb.model_set),
            "satisfiable": self._kb.satisfiable,
            "steps": len(self._kb.history),
        }

    # -- theory change ------------------------------------------------------

    def revise(self, new_information: FormulaLike) -> KnowledgeBase:
        self._kb = self._kb.revise(new_information)
        return self._kb

    def update(self, new_information: FormulaLike) -> KnowledgeBase:
        self._kb = self._kb.update(new_information)
        return self._kb

    def fit(self, new_information: FormulaLike) -> KnowledgeBase:
        self._kb = self._kb.fit(new_information)
        return self._kb

    def arbitrate(self, new_information: FormulaLike) -> KnowledgeBase:
        self._kb = self._kb.arbitrate(new_information)
        return self._kb

    def contract(self, retracted: FormulaLike) -> KnowledgeBase:
        self._kb = self._kb.contract(retracted)
        return self._kb

    def merge(self, sources: Sequence[FormulaLike]) -> KnowledgeBase:
        """N-ary consensus: the current theory is one voice among the
        sources (``(ψ ∨ φ₁ ∨ … ∨ φₖ) ▷ ⊤``), recorded as one ``merge``
        step in the provenance log."""
        if not sources:
            raise ReproError("merge requires at least one source")
        operator = ArbitrationOperator(self._fitting)
        parsed = [_as_formula(source) for source in sources]
        model_sets = [self._kb.model_set] + [
            models(formula, self.vocabulary) for formula in parsed
        ]
        after = operator.merge_models(model_sets)
        from repro.logic.syntax import disjoin

        incoming = disjoin(parsed)
        record = ChangeRecord(
            operation="merge",
            operator=operator.name,
            incoming=incoming,
            before=self._kb.model_set,
            after=after,
        )
        self._kb = KnowledgeBase(
            form_formula(after),
            revision=self._revision,
            update=self._update,
            fitting=self._fitting,
            _models=after,
            _history=self._kb.history + (record,),
        )
        return self._kb

    def ask(self, query: FormulaLike) -> str:
        """Three-valued query answer (``yes`` / ``no`` / ``unknown``)."""
        return self._kb.ask(query)

    # -- persistence --------------------------------------------------------

    def to_payload(self) -> dict:
        """The store snapshot (versioned by :mod:`repro.kb.serialize`)."""
        from repro.kb.serialize import knowledge_base_to_dict

        return {
            "id": self.session_id,
            "session_kind": self.kind,
            "operators": dict(self._operator_names),
            "impl": self._impl,
            "kb": knowledge_base_to_dict(self._kb),
        }

    @classmethod
    def from_payload(
        cls, data: dict, registry: Optional[ContextRegistry] = None
    ) -> "Session":
        """Inverse of :meth:`to_payload`; reattaches context proxies."""
        from repro.kb.serialize import knowledge_base_from_dict

        session = cls.__new__(cls)
        session.session_id = validate_session_id(data["id"])
        session._impl = ensure_impl(data.get("impl", AUTO))
        session._registry = registry if registry is not None else default_registry()
        names = dict(DEFAULT_OPERATOR_NAMES)
        names.update(data.get("operators") or {})
        session._operator_names = names
        session._revision = session._proxy(names["revision"])
        session._update = session._proxy(names["update"])
        session._fitting = session._proxy(names["fitting"])
        session._kb = knowledge_base_from_dict(
            data["kb"],
            revision=session._revision,
            update=session._update,
            fitting=session._fitting,
        )
        return session

    def __repr__(self) -> str:
        return (
            f"Session({self.session_id!r}, atoms={list(self.vocabulary.atoms)}, "
            f"steps={len(self._kb.history)})"
        )


class WeightedSession:
    """A weighted (Section 4) session: graded trust instead of model sets.

    The weighted operators carry their own dense/exact backend dispatch
    internally, so this session does not route through the context
    registry; it exists so the serving layer speaks one protocol for both
    knowledge-state families.
    """

    kind = "weighted"

    def __init__(
        self,
        session_id: str,
        atoms: Sequence[str],
        formula: FormulaLike = "true",
        weight: int = 1,
        _wkb: Optional[WeightedKnowledgeBase] = None,
    ):
        self.session_id = validate_session_id(session_id)
        from repro.logic.interpretation import Vocabulary

        self._vocabulary = Vocabulary(list(atoms))
        if _wkb is not None:
            self._wkb = _wkb
        else:
            self._wkb = WeightedKnowledgeBase.from_formula(
                _as_formula(formula), self._vocabulary, weight=weight
            )
        self._fitting = WeightedModelFitting()
        self._arbitration = WeightedArbitration(self._fitting)
        self._steps = 0

    @property
    def wkb(self) -> WeightedKnowledgeBase:
        return self._wkb

    @property
    def vocabulary(self):
        return self._vocabulary

    def state(self) -> dict:
        support = self._wkb.support()
        from repro.logic.implicants import minimal_formula

        return {
            "id": self.session_id,
            "kind": self.kind,
            "atoms": list(self._vocabulary.atoms),
            "formula": str(minimal_formula(support)),
            "models": len(support),
            "satisfiable": not support.is_empty,
            "steps": self._steps,
        }

    def _incoming(self, formula: FormulaLike, weight: int) -> WeightedKnowledgeBase:
        return WeightedKnowledgeBase.from_formula(
            _as_formula(formula), self._vocabulary, weight=weight
        )

    def fit(self, formula: FormulaLike, weight: int = 1) -> WeightedKnowledgeBase:
        """Weighted model-fitting ``ψ̃ ▷ μ̃``."""
        self._wkb = self._fitting.apply(self._wkb, self._incoming(formula, weight))
        self._steps += 1
        return self._wkb

    def arbitrate(
        self, formula: FormulaLike, weight: int = 1
    ) -> WeightedKnowledgeBase:
        """Weighted arbitration ``ψ̃ Δ φ̃``."""
        self._wkb = self._arbitration.apply(
            self._wkb, self._incoming(formula, weight)
        )
        self._steps += 1
        return self._wkb

    def merge(
        self, sources: Sequence[FormulaLike], weights: Optional[Sequence[int]] = None
    ) -> WeightedKnowledgeBase:
        """N-ary weighted consensus including the current base."""
        if not sources:
            raise ReproError("merge requires at least one source")
        if weights is None:
            weights = [1] * len(sources)
        if len(weights) != len(sources):
            raise ReproError("merge weights must match sources one-to-one")
        incoming = [
            self._incoming(formula, weight)
            for formula, weight in zip(sources, weights)
        ]
        self._wkb = self._arbitration.merge([self._wkb] + incoming)
        self._steps += 1
        return self._wkb

    def ask(self, query: FormulaLike) -> str:
        """Three-valued entailment over the support of the weighted base."""
        support = self._wkb.support()
        query_models = models(_as_formula(query), self._vocabulary)
        if support.issubset(query_models):
            return "yes"
        if support.intersection(query_models).is_empty:
            return "no"
        return "unknown"

    def to_payload(self) -> dict:
        from repro.kb.serialize import weighted_kb_to_dict

        return {
            "id": self.session_id,
            "session_kind": self.kind,
            "steps": self._steps,
            "kb": weighted_kb_to_dict(self._wkb),
        }

    @classmethod
    def from_payload(cls, data: dict) -> "WeightedSession":
        from repro.kb.serialize import weighted_kb_from_dict

        wkb = weighted_kb_from_dict(data["kb"])
        session = cls(
            data["id"], atoms=list(wkb.vocabulary.atoms), _wkb=wkb
        )
        session._steps = int(data.get("steps", 0))
        return session

    def __repr__(self) -> str:
        return (
            f"WeightedSession({self.session_id!r}, "
            f"atoms={list(self._vocabulary.atoms)}, steps={self._steps})"
        )
