"""``repro.session`` — the session core: one dispatch rule, shared engines.

The library grew three execution tiers (scalar reference, vectorized
:class:`~repro.engine.batched.BatchedOperator`, symbolic BDD) that call
sites used to select and wire ad hoc.  This package is the load-bearing
middle layer between them and every consumer:

* :mod:`repro.session.dispatch` — the single ``impl`` validation and
  ``auto``/``dense``/``symbolic`` resolution rule
  (:func:`resolve_backend`), which ``TheoryChangeOperator.apply``, the
  postulate harness, and the CLI all route through;
* :mod:`repro.session.registry` — LRU-bounded resolution of
  ``(operator, vocabulary, impl)`` to a shared
  :class:`ExecutionContext` (one distance matrix / one BDD manager per
  key, ``cache.session.contexts.*`` observability);
* :mod:`repro.session.session` — :class:`Session` /
  :class:`WeightedSession`, the per-client state the serving layer
  (:mod:`repro.serve`) holds and persists.
"""

from repro.session.dispatch import (
    AUTO,
    DENSE,
    SYMBOLIC,
    ensure_impl,
    resolve_backend,
)
from repro.session.registry import (
    DEFAULT_MAX_CONTEXTS,
    ContextRegistry,
    ExecutionContext,
    clear_contexts,
    context_for,
    default_registry,
)
from repro.session.session import (
    DEFAULT_OPERATOR_NAMES,
    OPERATOR_FACTORIES,
    Session,
    WeightedSession,
    operator_by_name,
)

__all__ = [
    "AUTO",
    "DENSE",
    "SYMBOLIC",
    "ensure_impl",
    "resolve_backend",
    "DEFAULT_MAX_CONTEXTS",
    "ContextRegistry",
    "ExecutionContext",
    "context_for",
    "default_registry",
    "clear_contexts",
    "OPERATOR_FACTORIES",
    "DEFAULT_OPERATOR_NAMES",
    "operator_by_name",
    "Session",
    "WeightedSession",
]
