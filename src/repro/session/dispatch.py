"""The single definition of backend dispatch for operator execution.

Before the session layer, every call site — ``TheoryChangeOperator.apply``,
the postulate harness, the satisfaction matrix, the CLI — re-implemented
the same two decisions: *is this impl string valid here* and *which
backend actually runs*.  This module owns both, so the answer-identity
contract ("``impl='auto'`` picks symbolic exactly when the operator
supports it and the vocabulary clears the threshold") is written down
once and every layer routes through it.

Backends:

* ``"dense"`` — enumerate all ``2^|T|`` interpretations; the scalar /
  vectorized numpy stack.
* ``"symbolic"`` — ROBDD level sets (:mod:`repro.symbolic`); the only
  backend that completes at 30+ atoms.

``"auto"`` is not a backend but a *policy*: it resolves to one of the two
above via :func:`resolve_backend`.
"""

from __future__ import annotations

from typing import Sequence, Type

from repro.errors import ReproError
from repro.logic.interpretation import Vocabulary
from repro.operators.base import TheoryChangeOperator

__all__ = [
    "AUTO",
    "DENSE",
    "SYMBOLIC",
    "ensure_impl",
    "resolve_backend",
]

AUTO = "auto"
DENSE = "dense"
SYMBOLIC = "symbolic"


def ensure_impl(
    impl: str,
    allowed: Sequence[str] = (AUTO, DENSE, SYMBOLIC),
    error: Type[ReproError] = ReproError,
) -> str:
    """Validate an ``impl`` string against the modes a call site accepts.

    Raises ``error`` with the historical message shape (the one every
    pre-refactor call site produced) so behavior is unchanged for callers
    that match on it.
    """
    if impl not in allowed:
        parts = [repr(mode) for mode in allowed]
        if len(parts) > 1:
            expected = ", ".join(parts[:-1]) + " or " + parts[-1]
        else:
            expected = parts[0]
        raise error(f"unknown impl {impl!r}; expected {expected}")
    return impl


def resolve_backend(
    operator: TheoryChangeOperator,
    vocabulary: Vocabulary,
    impl: str = AUTO,
    error: Type[ReproError] = ReproError,
) -> str:
    """Resolve ``impl`` to the backend that will actually run.

    * ``"dense"`` / ``"symbolic"`` are forced (a forced symbolic request
      for an unsupported operator is *not* rejected here — the symbolic
      executor raises its own precise refusal, preserving the historical
      error text);
    * ``"auto"`` picks symbolic exactly when the operator has a symbolic
      execution and the vocabulary has reached
      :func:`repro.symbolic.symbolic_threshold`, keeping small instances
      bit-identical to the historical dense output.
    """
    ensure_impl(impl, error=error)
    if impl == DENSE:
        return DENSE
    if impl == SYMBOLIC:
        return SYMBOLIC
    from repro.symbolic import supports_symbolic, symbolic_threshold

    if supports_symbolic(operator) and vocabulary.size >= symbolic_threshold():
        return SYMBOLIC
    return DENSE
