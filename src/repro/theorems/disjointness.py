"""Theorem 3.2: revision, update, and model-fitting are pairwise disjoint.

The paper proves three incompatibilities by exhibiting concrete singleton
scenarios:

1. no operator satisfies both **(R2)** and **(A8)**;
2. no operator satisfies all of **(U2)**, **(U8)**, **(A8)**;
3. no operator satisfies all of **(R1)**, **(R2)**, **(R3)**, **(U8)**.

This module turns each proof into an executable *witness finder*: given
any operator, it replays the proof's scenarios over all small singleton
choices and returns the axiom instance that fails — which must exist,
because the axiom sets are jointly unsatisfiable.  Tests assert that a
witness exists for every operator the library ships (and for any operator
a user might plug in).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Optional

from repro.logic.interpretation import Vocabulary
from repro.logic.semantics import ModelSet
from repro.operators.base import TheoryChangeOperator
from repro.postulates.axioms import axiom_by_name
from repro.postulates.counterexample import Counterexample

__all__ = [
    "DisjointnessWitness",
    "witness_r2_a8",
    "witness_u2_u8_a8",
    "witness_r1_r2_r3_u8",
    "all_witnesses",
]


@dataclass(frozen=True)
class DisjointnessWitness:
    """Evidence that an operator fails at least one axiom of a combo.

    ``combo`` names the jointly unsatisfiable axiom set; ``failed`` is the
    counterexample for the axiom instance that broke.
    """

    combo: tuple[str, ...]
    failed: Counterexample

    def describe(self) -> str:
        """One-line summary plus the counterexample details."""
        return (
            f"combo {{{', '.join(self.combo)}}} is unsatisfiable: "
            + self.failed.describe()
        )


def _first_failure(
    operator: TheoryChangeOperator,
    instances: list[tuple[str, tuple[ModelSet, ...]]],
) -> Optional[Counterexample]:
    for axiom_name, scenario in instances:
        counterexample = axiom_by_name(axiom_name).check_instance(
            operator, scenario
        )
        if counterexample is not None:
            return counterexample
    return None


def witness_r2_a8(
    operator: TheoryChangeOperator, vocabulary: Vocabulary
) -> Optional[DisjointnessWitness]:
    """Replay the paper's first scenario.

    With singletons m₁, m₂: ψ₁ = m₁ ∨ m₂, ψ₂ = m₂, μ = m₁ ∨ m₂.  R2 pins
    ψ₁ * μ = m₁ ∨ m₂ and ψ₂ * μ = m₂; their conjunction is m₂, so A8
    forces (ψ₁∨ψ₂) * μ ⊆ m₂ — but R2 pins it to m₁ ∨ m₂.  At least one
    instance must fail for any operator.
    """
    for m1, m2 in permutations(range(min(4, vocabulary.interpretation_count)), 2):
        psi1 = ModelSet(vocabulary, [m1, m2])
        psi2 = ModelSet(vocabulary, [m2])
        mu = ModelSet(vocabulary, [m1, m2])
        failure = _first_failure(
            operator,
            [
                ("R2", (psi1, mu)),
                ("R2", (psi2, mu)),
                ("R2", (psi1.union(psi2), mu)),
                ("A8", (psi1, psi2, mu)),
            ],
        )
        if failure is not None:
            return DisjointnessWitness(("R2", "A8"), failure)
    return None


def witness_u2_u8_a8(
    operator: TheoryChangeOperator, vocabulary: Vocabulary
) -> Optional[DisjointnessWitness]:
    """Replay the paper's second scenario (same ψ's and μ as the first;
    U2 pins the two results, U8 pins the disjunctive one, A8 contradicts)."""
    for m1, m2 in permutations(range(min(4, vocabulary.interpretation_count)), 2):
        psi1 = ModelSet(vocabulary, [m1, m2])
        psi2 = ModelSet(vocabulary, [m2])
        mu = ModelSet(vocabulary, [m1, m2])
        failure = _first_failure(
            operator,
            [
                ("U2", (psi1, mu)),
                ("U2", (psi2, mu)),
                ("U8", (psi1, psi2, mu)),
                ("A8", (psi1, psi2, mu)),
            ],
        )
        if failure is not None:
            return DisjointnessWitness(("U2", "U8", "A8"), failure)
    return None


def witness_r1_r2_r3_u8(
    operator: TheoryChangeOperator, vocabulary: Vocabulary
) -> Optional[DisjointnessWitness]:
    """Replay the paper's third scenario.

    With singletons m₁, m₂, m₃: ψ₁ = m₁, ψ₂ = m₂, μ = m₂ ∨ m₃.  R1+R3
    force ψ₁ * μ to be a non-empty subset of {m₂, m₃}; R2 pins
    ψ₂ * μ = m₂ and (ψ₁∨ψ₂) * μ = m₂; U8 then forces
    (ψ₁ * μ) ∨ m₂ = m₂, i.e. ψ₁ * μ = m₂ — but the paper's w.l.o.g. swap
    of m₂/m₃ (we iterate all permutations) rules that out for some choice
    of singletons.
    """
    limit = min(4, vocabulary.interpretation_count)
    if limit < 3:
        return None
    for m1, m2, m3 in permutations(range(limit), 3):
        psi1 = ModelSet(vocabulary, [m1])
        psi2 = ModelSet(vocabulary, [m2])
        mu = ModelSet(vocabulary, [m2, m3])
        failure = _first_failure(
            operator,
            [
                ("R1", (psi1, mu)),
                ("R3", (psi1, mu)),
                ("R2", (psi2, mu)),
                ("R2", (psi1.union(psi2), mu)),
                ("U8", (psi1, psi2, mu)),
            ],
        )
        if failure is not None:
            return DisjointnessWitness(("R1", "R2", "R3", "U8"), failure)
    return None


#: The three scenario families of Theorem 3.2, in the paper's order.
_WITNESS_FAMILIES: tuple[tuple[str, object], ...] = (
    ("R2+A8", witness_r2_a8),
    ("U2+U8+A8", witness_u2_u8_a8),
    ("R1+R2+R3+U8", witness_r1_r2_r3_u8),
)


def all_witnesses(
    operator: TheoryChangeOperator, vocabulary: Vocabulary, jobs: int = 1
) -> dict[str, Optional[DisjointnessWitness]]:
    """Run all three scenario families; keys name the combos.

    For Theorem 3.2 to hold, every operator must produce a witness in each
    family (``None`` anywhere would refute the theorem).  ``jobs > 1``
    fans the families out over a process pool (the witness finders are
    module-level and the shipped operators pickle, per the audit engine's
    contract); results are order-independent, so the dict is identical to
    a serial run.
    """
    if jobs > 1:
        import pickle
        from concurrent.futures import ProcessPoolExecutor

        try:
            pickle.dumps(operator)
        except Exception:
            pass  # unpicklable operator: fall through to the serial loop
        else:
            with ProcessPoolExecutor(max_workers=min(jobs, len(_WITNESS_FAMILIES))) as pool:
                futures = {
                    combo: pool.submit(finder, operator, vocabulary)
                    for combo, finder in _WITNESS_FAMILIES
                }
                return {combo: future.result() for combo, future in futures.items()}
    return {
        combo: finder(operator, vocabulary) for combo, finder in _WITNESS_FAMILIES
    }
