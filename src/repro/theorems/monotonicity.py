"""Monotonicity probes (the Gärdenfors-impossibility discussion).

Section 3 of the paper recalls Katsuno–Mendelzon's observation that every
update operator is *monotone* — if φ implies ψ then φ ⋄ μ implies ψ ⋄ μ —
while Gärdenfors' impossibility theorem rules out monotone non-trivial
revision.  This module makes monotonicity executable so the test suite can
demonstrate the split on the implemented operators: Winslett and Forbus
pass, Dalal (and the fitting operators) fail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.logic.semantics import ModelSet
from repro.operators.base import TheoryChangeOperator

__all__ = ["MonotonicityFailure", "check_monotone"]


@dataclass(frozen=True)
class MonotonicityFailure:
    """A scenario where φ ⊨ ψ but (φ * μ) ⊭ (ψ * μ)."""

    phi: ModelSet
    psi: ModelSet
    mu: ModelSet
    phi_result: ModelSet
    psi_result: ModelSet


def check_monotone(
    operator: TheoryChangeOperator,
    knowledge_bases: Sequence[ModelSet],
    inputs: Sequence[ModelSet],
) -> Optional[MonotonicityFailure]:
    """Search the given scenario space for a monotonicity violation.

    Returns the first failure or ``None`` (monotone on this sample).
    The pairs tested are exactly those with ``Mod(φ) ⊆ Mod(ψ)``.
    """
    for phi in knowledge_bases:
        for psi in knowledge_bases:
            if not phi.issubset(psi):
                continue
            for mu in inputs:
                phi_result = operator.apply_models(phi, mu)
                psi_result = operator.apply_models(psi, mu)
                if not phi_result.issubset(psi_result):
                    return MonotonicityFailure(
                        phi, psi, mu, phi_result, psi_result
                    )
    return None
