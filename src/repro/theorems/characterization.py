"""Theorem 3.1 machinery: operator ⇄ loyal assignment.

The only-if direction of Theorem 3.1 *constructs* the pre-order from the
operator:

    ``I ≤ψ J   iff   I ∈ Mod(ψ ▷ form(I, J))``

This module implements that construction, verifies that the derived
relation is a total pre-order (the proof's step (1)), extracts it as a
:class:`~repro.orders.preorder.TotalPreorder`, packages the family of
derived orders as a :class:`~repro.orders.loyal.LoyalAssignment` (step
(2) checks loyalty), and round-trips: rebuilding the operator from the
derived assignment must reproduce the original on every scenario (step
(3)).

For an operator that satisfies A1–A8 all three steps succeed (this is the
E5 experiment); for the paper's odist operator step (2) fails exactly at
loyalty condition 2, matching its A8 defect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import PostulateError
from repro.logic.semantics import ModelSet
from repro.operators.base import TheoryChangeOperator
from repro.core.fitting import ModelFittingOperator
from repro.orders.loyal import LoyalAssignment
from repro.orders.preorder import TotalPreorder

__all__ = [
    "DerivedOrderReport",
    "derive_order",
    "derived_assignment",
    "RoundTripFailure",
    "round_trip_check",
]


@dataclass(frozen=True)
class DerivedOrderReport:
    """Result of deriving ``≤ψ`` from an operator via Theorem 3.1.

    When the relation fails to be a total pre-order the offending property
    and witnesses are recorded and ``order`` is ``None``.
    """

    is_reflexive: bool
    is_total: bool
    is_transitive: bool
    order: Optional[TotalPreorder]
    witness: tuple[int, ...] = ()

    @property
    def is_total_preorder(self) -> bool:
        """All three structural properties hold."""
        return self.is_reflexive and self.is_total and self.is_transitive


def derive_order(
    operator: TheoryChangeOperator, psi: ModelSet
) -> DerivedOrderReport:
    """Derive ``≤ψ`` from the operator: ``I ≤ψ J iff
    I ∈ Mod(ψ ▷ form(I, J))`` — the construction in the proof of
    Theorem 3.1."""
    vocabulary = psi.vocabulary
    total = vocabulary.interpretation_count

    # leq[i][j] == True iff interpretation i ≤ψ interpretation j.
    leq = [[False] * total for _ in range(total)]
    for i in range(total):
        result = operator.apply_models(psi, ModelSet(vocabulary, [i]))
        leq[i][i] = i in result
    for i in range(total):
        for j in range(i + 1, total):
            result = operator.apply_models(psi, ModelSet(vocabulary, [i, j]))
            leq[i][j] = i in result
            leq[j][i] = j in result

    for i in range(total):
        if not leq[i][i]:
            return DerivedOrderReport(False, False, False, None, (i,))
    for i in range(total):
        for j in range(total):
            if not (leq[i][j] or leq[j][i]):
                return DerivedOrderReport(True, False, False, None, (i, j))
    for i in range(total):
        for j in range(total):
            if not leq[i][j]:
                continue
            for k in range(total):
                if leq[j][k] and not leq[i][k]:
                    return DerivedOrderReport(True, True, False, None, (i, j, k))

    # Extract ranks: in a total pre-order, the number of strictly smaller
    # elements is constant on equivalence classes and increases across
    # them, so it serves as the key.
    ranks = [
        sum(1 for j in range(total) if leq[j][i] and not leq[i][j])
        for i in range(total)
    ]
    order = TotalPreorder(vocabulary, ranks)
    return DerivedOrderReport(True, True, True, order)


def derived_assignment(operator: TheoryChangeOperator) -> LoyalAssignment:
    """The ψ ↦ ≤ψ assignment induced by the operator.

    Raises :class:`~repro.errors.PostulateError` if some derived relation
    is not a total pre-order (which, by Theorem 3.1, certifies that the
    operator violates A1–A8 somewhere).
    """

    def build(psi: ModelSet) -> TotalPreorder:
        report = derive_order(operator, psi)
        if report.order is None:
            raise PostulateError(
                f"derived relation for Mod(ψ)={psi!r} is not a total "
                f"pre-order (witness masks {report.witness})"
            )
        return report.order

    return LoyalAssignment(build, name=f"derived[{operator.name}]")


@dataclass(frozen=True)
class RoundTripFailure:
    """A scenario where rebuilding the operator from its derived
    assignment changed the outcome."""

    psi: ModelSet
    mu: ModelSet
    original: ModelSet
    rebuilt: ModelSet


def round_trip_check(
    operator: TheoryChangeOperator,
    knowledge_bases: Sequence[ModelSet],
    inputs: Sequence[ModelSet],
) -> Optional[RoundTripFailure]:
    """Step (3) of Theorem 3.1's only-if proof, mechanically.

    Derives the assignment, rebuilds ``Min(Mod(μ), ≤ψ)``, and compares
    with the original operator on every (ψ, μ) pair.  Returns the first
    divergence or ``None``.
    """
    assignment = derived_assignment(operator)
    rebuilt_operator = ModelFittingOperator(
        assignment, name=f"rebuilt[{operator.name}]"
    )
    for psi in knowledge_bases:
        for mu in inputs:
            original = operator.apply_models(psi, mu)
            rebuilt = rebuilt_operator.apply_models(psi, mu)
            if original != rebuilt:
                return RoundTripFailure(psi, mu, original, rebuilt)
    return None
