"""Executable forms of the paper's theorems.

* Theorem 3.1 (characterization): :mod:`repro.theorems.characterization`
  derives ``≤ψ`` from an operator, checks it is a total pre-order, and
  round-trips operator ⇄ assignment.
* Theorem 3.2 (disjointness): :mod:`repro.theorems.disjointness` replays
  the proof's singleton scenarios as witness finders.
* The monotonicity discussion (Gärdenfors): :mod:`repro.theorems.monotonicity`.
"""

from repro.theorems.characterization import (
    DerivedOrderReport,
    RoundTripFailure,
    derive_order,
    derived_assignment,
    round_trip_check,
)
from repro.theorems.disjointness import (
    DisjointnessWitness,
    all_witnesses,
    witness_r1_r2_r3_u8,
    witness_r2_a8,
    witness_u2_u8_a8,
)
from repro.theorems.monotonicity import MonotonicityFailure, check_monotone

__all__ = [
    "DerivedOrderReport",
    "derive_order",
    "derived_assignment",
    "RoundTripFailure",
    "round_trip_check",
    "DisjointnessWitness",
    "witness_r2_a8",
    "witness_u2_u8_a8",
    "witness_r1_r2_r3_u8",
    "all_witnesses",
    "MonotonicityFailure",
    "check_monotone",
]
