"""Quantification harness: check axioms over scenario spaces.

An axiom's roles are filled with knowledge bases drawn from a *scenario
space*:

* :func:`exhaustive_scenarios` — every tuple of subsets of the
  interpretation space.  There are ``2^(2^|𝒯|)`` knowledge bases up to
  logical equivalence, so this is feasible for |𝒯| ≤ 2 on three-role
  axioms and |𝒯| ≤ 3 on two-role axioms.
* :func:`sampled_scenarios` — seeded uniform sampling for anything larger.

The search is semantic: knowledge bases are represented directly by model
sets, which quotients out syntax exactly as the axioms do (axiom
R4/U4/A4 is checked separately at formula level).
"""

from __future__ import annotations

import random
import time
from itertools import islice, product
from typing import Iterable, Iterator, Optional, Sequence

from repro import obs
from repro.engine.chunks import DEFAULT_EXHAUSTIVE_LIMIT
from repro.errors import ReproError
from repro.engine.resilience import DEFAULT_MAX_RETRIES
from repro.logic.interpretation import Vocabulary, iter_set_bits
from repro.logic.semantics import ModelSet
from repro.operators.base import TheoryChangeOperator
from repro.postulates.axioms import Axiom
from repro.postulates.counterexample import CheckResult, Counterexample

__all__ = [
    "all_model_sets",
    "exhaustive_scenarios",
    "sampled_scenarios",
    "check_axiom",
    "audit_operator",
]

#: Scenario-space size above which enumeration switches to sampling
#: (see :func:`check_axiom`).  Shared with the audit engine's planner so
#: serial and parallel runs pick the same mode.
EXHAUSTIVE_LIMIT = DEFAULT_EXHAUSTIVE_LIMIT


def all_model_sets(
    vocabulary: Vocabulary, include_empty: bool = True
) -> list[ModelSet]:
    """Every knowledge base over the vocabulary, as model sets.

    ``2^(2^|𝒯|)`` sets — 4 for one atom, 16 for two, 256 for three.  The
    empty set (the unsatisfiable KB) is included by default because several
    axioms (A2, R3) quantify over it.
    """
    count = vocabulary.interpretation_count
    sets: list[ModelSet] = []
    for bits in range(1 << count):
        if bits == 0 and not include_empty:
            continue
        sets.append(ModelSet(vocabulary, iter_set_bits(bits)))
    return sets


def exhaustive_scenarios(
    vocabulary: Vocabulary, roles: int, include_empty: bool = True
) -> Iterator[tuple[ModelSet, ...]]:
    """All ``roles``-tuples of knowledge bases over the vocabulary."""
    universe = all_model_sets(vocabulary, include_empty)
    return product(universe, repeat=roles)


def sampled_scenarios(
    vocabulary: Vocabulary,
    roles: int,
    count: int,
    rng: int | random.Random,
    include_empty: bool = True,
) -> Iterator[tuple[ModelSet, ...]]:
    """``count`` seeded-random ``roles``-tuples of knowledge bases.

    Each knowledge base is a uniformly random subset of the interpretation
    space (biased neither sparse nor dense); the empty KB appears with its
    natural probability unless excluded.
    """
    generator = rng if isinstance(rng, random.Random) else random.Random(rng)
    total = vocabulary.interpretation_count
    produced = 0
    while produced < count:
        scenario: list[ModelSet] = []
        acceptable = True
        for _ in range(roles):
            bits = generator.getrandbits(total)
            if bits == 0 and not include_empty:
                acceptable = False
                break
            scenario.append(ModelSet(vocabulary, iter_set_bits(bits)))
        if acceptable:
            produced += 1
            yield tuple(scenario)


def check_axiom(
    operator: TheoryChangeOperator,
    axiom: Axiom,
    vocabulary: Vocabulary,
    max_scenarios: int = 50_000,
    rng: int | random.Random = 0,
    stop_at_first: bool = True,
    jobs: int = 1,
    chunk_timeout: Optional[float] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    impl: str = "dense",
) -> CheckResult:
    """Check one axiom for one operator over the vocabulary.

    Enumerates the scenario space when it fits in ``EXHAUSTIVE_LIMIT``
    tuples, truncating enumeration at ``max_scenarios`` (the result is
    marked ``exhaustive`` only when nothing was cut); larger spaces use
    seeded sampling of ``max_scenarios`` tuples.  Returns a
    :class:`CheckResult` carrying the first counterexample found, if any —
    also under ``stop_at_first=False``, which keeps scanning (to count the
    full space) but still reports the earliest failure.

    ``jobs > 1`` routes through the parallel audit engine
    (:func:`repro.engine.pool.check_axiom_parallel`), whose merge is
    deterministic and result-identical to this serial loop;
    ``chunk_timeout`` / ``max_retries`` configure its resilience ladder
    (ignored on the serial path).

    ``impl="symbolic"`` runs the whole check on BDD level sets
    (:func:`repro.symbolic.check_axiom_symbolic`): result-identical here
    up to 16 atoms, and the only mode that completes at 30+.  Symbolic
    checks are serial (nodes live in one manager), so ``jobs`` must be 1.
    """
    from repro.session.dispatch import ensure_impl

    ensure_impl(impl, ("dense", "symbolic"))
    if impl == "symbolic":
        if jobs > 1:
            raise ReproError(
                "impl='symbolic' is serial (shared BDD manager); use jobs=1"
            )
        from repro.symbolic import check_axiom_symbolic

        return check_axiom_symbolic(
            operator,
            axiom,
            vocabulary,
            max_scenarios=max_scenarios,
            rng=rng,
            stop_at_first=stop_at_first,
        )
    if jobs > 1:
        from repro.engine.pool import check_axiom_parallel

        return check_axiom_parallel(
            operator,
            axiom,
            vocabulary,
            max_scenarios=max_scenarios,
            rng=rng,
            stop_at_first=stop_at_first,
            jobs=jobs,
            chunk_timeout=chunk_timeout,
            max_retries=max_retries,
        )
    roles = len(axiom.roles)
    space = (1 << vocabulary.interpretation_count) ** roles
    truncated = False
    if space <= EXHAUSTIVE_LIMIT:
        scenarios: Iterable[tuple[ModelSet, ...]] = islice(
            exhaustive_scenarios(vocabulary, roles), max_scenarios
        )
        exhaustive = space <= max_scenarios
        truncated = not exhaustive
    else:
        scenarios = sampled_scenarios(vocabulary, roles, max_scenarios, rng)
        exhaustive = False
    checked = 0
    first: Optional[Counterexample] = None
    start = time.perf_counter()
    for scenario in scenarios:
        checked += 1
        counterexample = axiom.check_instance(operator, scenario)
        if counterexample is not None:
            if first is None:
                first = counterexample
            if stop_at_first:
                break
    elapsed = time.perf_counter() - start
    registry = obs.active()
    if registry is not None:
        registry.counter("harness.checks").inc()
        registry.counter("harness.scenarios").inc(checked)
        registry.histogram("harness.check_seconds").observe(elapsed)
        if truncated:
            registry.counter("harness.truncated_checks").inc()
    return CheckResult(
        axiom=axiom.name,
        operator=operator.name,
        holds=first is None,
        scenarios_checked=checked,
        exhaustive=exhaustive,
        counterexample=first,
        metrics={
            "scenarios_checked": checked,
            "truncated": truncated,
            "elapsed_seconds": elapsed,
        },
    )


def audit_operator(
    operator: TheoryChangeOperator,
    axioms: Sequence[Axiom],
    vocabulary: Vocabulary,
    max_scenarios: int = 50_000,
    rng: int | random.Random = 0,
    jobs: int = 1,
    chunk_timeout: Optional[float] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    impl: str = "dense",
) -> dict[str, CheckResult]:
    """Check a whole axiom set for one operator; results keyed by axiom.

    With ``jobs > 1`` the whole sweep runs through one process pool (one
    roster shipment, shared per-worker caches) instead of per-axiom.
    ``impl="symbolic"`` audits on BDD level sets (serial; ``jobs`` must
    stay 1).
    """
    from repro.session.dispatch import ensure_impl

    ensure_impl(impl, ("dense", "symbolic"))
    if impl == "symbolic":
        if jobs > 1:
            raise ReproError(
                "impl='symbolic' is serial (shared BDD manager); use jobs=1"
            )
        from repro.symbolic import audit_operator_symbolic

        return audit_operator_symbolic(
            operator, axioms, vocabulary, max_scenarios=max_scenarios, rng=rng
        )
    if jobs > 1:
        from repro.engine.pool import run_audit

        outcome = run_audit(
            [operator],
            axioms,
            vocabulary,
            max_scenarios=max_scenarios,
            rng=rng,
            jobs=jobs,
            chunk_timeout=chunk_timeout,
            max_retries=max_retries,
        )
        return outcome.results[operator.name]
    results: dict[str, CheckResult] = {}
    for axiom in axioms:
        results[axiom.name] = check_axiom(
            operator, axiom, vocabulary, max_scenarios, rng
        )
    return results
