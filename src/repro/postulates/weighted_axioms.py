"""Executable weighted-fitting axioms F1–F8 (Section 4).

The paper obtains F1–F8 from A1–A8 "by simply replacing regular knowledge
bases by weighted knowledge bases", with:

* implication  = pointwise ``≤`` on weight functions,
* equivalence  = equal weight functions,
* ∧            = pointwise minimum (⊓),
* ∨            = pointwise sum (⊔),
* satisfiable  = some positive weight.

Checks run on :class:`~repro.core.weighted.WeightedKnowledgeBase` and any
operator exposing ``apply(psi, mu) -> WeightedKnowledgeBase`` (duck-typed;
:class:`~repro.core.weighted.WeightedModelFitting` is the intended
subject).  Scenario spaces are sampled with small integer weights — the
weighted KB space is infinite, so exhaustiveness is impossible; sampling
with seeds keeps runs reproducible.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Protocol, Sequence

from repro import obs
from repro.core.weighted import WeightedKnowledgeBase
from repro.engine.resilience import DEFAULT_MAX_RETRIES
from repro.logic.interpretation import Vocabulary

__all__ = [
    "WeightedOperator",
    "WeightedAxiom",
    "WEIGHTED_AXIOMS",
    "WeightedCounterexample",
    "random_weighted_kbs",
    "check_weighted_axiom",
    "audit_weighted_operator",
    "render_weighted_audit",
]


class WeightedOperator(Protocol):
    """Anything applying a weighted change ``ψ̃ * μ̃``."""

    name: str

    def apply(
        self, psi: WeightedKnowledgeBase, mu: WeightedKnowledgeBase
    ) -> WeightedKnowledgeBase:
        """The weighted result."""
        ...


@dataclass(frozen=True)
class WeightedCounterexample:
    """A witnessed violation of one weighted axiom."""

    axiom: str
    operator: str
    roles: dict[str, WeightedKnowledgeBase]
    observed: dict[str, WeightedKnowledgeBase]
    explanation: str

    def describe(self) -> str:
        """Human-readable multi-line report."""
        lines = [f"{self.operator} violates ({self.axiom}): {self.explanation}"]
        for role, kb in self.roles.items():
            lines.append(f"  {role} = {kb!r}")
        for label, kb in self.observed.items():
            lines.append(f"  {label} = {kb!r}")
        return "\n".join(lines)


Scenario = Sequence[WeightedKnowledgeBase]
Checker = Callable[[WeightedOperator, Scenario], Optional[WeightedCounterexample]]


@dataclass(frozen=True)
class WeightedAxiom:
    """One executable weighted postulate."""

    name: str
    statement: str
    roles: tuple[str, ...]
    checker: Checker

    def check_instance(
        self, operator: WeightedOperator, scenario: Scenario
    ) -> Optional[WeightedCounterexample]:
        """Check one concrete instantiation."""
        return self.checker(operator, scenario)


def _ce(axiom, op, roles, observed, explanation):
    return WeightedCounterexample(axiom, op.name, roles, observed, explanation)


def _check_f1(op: WeightedOperator, scenario: Scenario):
    psi, mu = scenario
    result = op.apply(psi, mu)
    if not result.implies(mu):
        return _ce("F1", op, {"psi": psi, "mu": mu}, {"result": result},
                   "ψ̃ ▷ μ̃ must imply μ̃ (pointwise ≤)")
    return None


def _check_f2(op: WeightedOperator, scenario: Scenario):
    psi, mu = scenario
    if psi.is_satisfiable:
        return None
    result = op.apply(psi, mu)
    if result.is_satisfiable:
        return _ce("F2", op, {"psi": psi, "mu": mu}, {"result": result},
                   "unsatisfiable ψ̃ must yield an unsatisfiable result")
    return None


def _check_f3(op: WeightedOperator, scenario: Scenario):
    psi, mu = scenario
    if not (psi.is_satisfiable and mu.is_satisfiable):
        return None
    result = op.apply(psi, mu)
    if not result.is_satisfiable:
        return _ce("F3", op, {"psi": psi, "mu": mu}, {"result": result},
                   "satisfiable ψ̃ and μ̃ must yield a satisfiable result")
    return None


def _check_f4(op: WeightedOperator, scenario: Scenario):
    # Weighted KBs are semantic objects (weight functions), so two
    # equivalent inputs are the *same* input; determinism is what remains
    # checkable: repeated application must agree.
    psi, mu = scenario
    first = op.apply(psi, mu)
    second = op.apply(psi, mu)
    if not first.equivalent(second):
        return _ce("F4", op, {"psi": psi, "mu": mu},
                   {"first": first, "second": second},
                   "operator is not deterministic on equal inputs")
    return None


def _check_f5(op: WeightedOperator, scenario: Scenario):
    psi, mu, phi = scenario
    left = op.apply(psi, mu).meet(phi)
    right = op.apply(psi, mu.meet(phi))
    if not left.implies(right):
        return _ce("F5", op, {"psi": psi, "mu": mu, "phi": phi},
                   {"lhs (ψ▷μ)⊓φ": left, "rhs ψ▷(μ⊓φ)": right},
                   "(ψ̃ ▷ μ̃) ∧ φ̃ must imply ψ̃ ▷ (μ̃ ∧ φ̃)")
    return None


def _check_f6(op: WeightedOperator, scenario: Scenario):
    psi, mu, phi = scenario
    left = op.apply(psi, mu).meet(phi)
    if not left.is_satisfiable:
        return None
    right = op.apply(psi, mu.meet(phi))
    if not right.implies(left):
        return _ce("F6", op, {"psi": psi, "mu": mu, "phi": phi},
                   {"lhs (ψ▷μ)⊓φ": left, "rhs ψ▷(μ⊓φ)": right},
                   "(ψ̃▷μ̃) ∧ φ̃ is satisfiable so ψ̃▷(μ̃∧φ̃) must imply it")
    return None


def _check_f7(op: WeightedOperator, scenario: Scenario):
    psi1, psi2, mu = scenario
    left = op.apply(psi1, mu).meet(op.apply(psi2, mu))
    right = op.apply(psi1.join(psi2), mu)
    if not left.implies(right):
        return _ce("F7", op, {"psi1": psi1, "psi2": psi2, "mu": mu},
                   {"(ψ1▷μ)⊓(ψ2▷μ)": left, "(ψ1⊔ψ2)▷μ": right},
                   "(ψ̃₁▷μ̃) ∧ (ψ̃₂▷μ̃) must imply (ψ̃₁∨ψ̃₂)▷μ̃")
    return None


def _check_f8(op: WeightedOperator, scenario: Scenario):
    psi1, psi2, mu = scenario
    left = op.apply(psi1, mu).meet(op.apply(psi2, mu))
    if not left.is_satisfiable:
        return None
    right = op.apply(psi1.join(psi2), mu)
    if not right.implies(left):
        return _ce("F8", op, {"psi1": psi1, "psi2": psi2, "mu": mu},
                   {"(ψ1▷μ)⊓(ψ2▷μ)": left, "(ψ1⊔ψ2)▷μ": right},
                   "the conjunction is satisfiable so (ψ̃₁∨ψ̃₂)▷μ̃ must imply it")
    return None


WEIGHTED_AXIOMS: tuple[WeightedAxiom, ...] = (
    WeightedAxiom("F1", "ψ̃ ▷ μ̃ implies μ̃", ("psi", "mu"), _check_f1),
    WeightedAxiom("F2", "unsat ψ̃ gives unsat result", ("psi", "mu"), _check_f2),
    WeightedAxiom("F3", "sat ψ̃, μ̃ give sat result", ("psi", "mu"), _check_f3),
    WeightedAxiom("F4", "syntax irrelevance / determinism", ("psi", "mu"), _check_f4),
    WeightedAxiom("F5", "(ψ̃▷μ̃) ∧ φ̃ implies ψ̃▷(μ̃∧φ̃)", ("psi", "mu", "phi"), _check_f5),
    WeightedAxiom("F6", "converse of F5 under satisfiability", ("psi", "mu", "phi"), _check_f6),
    WeightedAxiom("F7", "(ψ̃₁▷μ̃) ∧ (ψ̃₂▷μ̃) implies (ψ̃₁∨ψ̃₂)▷μ̃", ("psi1", "psi2", "mu"), _check_f7),
    WeightedAxiom("F8", "converse of F7 under satisfiability", ("psi1", "psi2", "mu"), _check_f8),
)


def random_weighted_kbs(
    vocabulary: Vocabulary,
    count: int,
    rng: int | random.Random,
    max_weight: int = 5,
    density: float = 0.5,
    include_unsatisfiable: bool = True,
) -> Iterator[WeightedKnowledgeBase]:
    """Seeded random weighted KBs with small integer weights.

    Each interpretation independently receives a positive weight in
    ``1..max_weight`` with probability ``density``.  Occasionally emits the
    all-zero KB (needed to exercise F2) unless excluded.

    The weight maps come from :func:`repro.engine.chunks.sample_weight_maps`
    — the single definition of the sampling stream, shared with the
    parallel engine's chunk planner so chunked sweeps replay exactly this
    sequence.
    """
    from repro.engine.chunks import sample_weight_maps

    generator = rng if isinstance(rng, random.Random) else random.Random(rng)
    maps = sample_weight_maps(
        generator,
        count,
        vocabulary.interpretation_count,
        max_weight,
        density,
        include_unsatisfiable,
    )
    for weights in maps:
        yield WeightedKnowledgeBase(vocabulary, weights)


def check_weighted_axiom(
    operator: WeightedOperator,
    axiom: WeightedAxiom,
    vocabulary: Vocabulary,
    scenarios: int = 500,
    rng: int | random.Random = 0,
    jobs: int = 1,
    max_weight: int = 5,
    density: float = 0.5,
    chunk_timeout: Optional[float] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
) -> Optional[WeightedCounterexample]:
    """Sampled check of one weighted axiom; first counterexample or None.

    ``jobs > 1`` routes through the weighted audit engine
    (:func:`repro.engine.weighted.check_weighted_axiom_parallel`), whose
    min-global-index merge reports the same first counterexample as this
    serial loop over the identical sampled stream; ``chunk_timeout`` /
    ``max_retries`` configure its resilience ladder (ignored serially).
    """
    if jobs > 1:
        from repro.engine.weighted import check_weighted_axiom_parallel

        return check_weighted_axiom_parallel(
            operator,
            axiom,
            vocabulary,
            scenarios=scenarios,
            rng=rng,
            jobs=jobs,
            max_weight=max_weight,
            density=density,
            chunk_timeout=chunk_timeout,
            max_retries=max_retries,
        )
    generator = rng if isinstance(rng, random.Random) else random.Random(rng)
    roles = len(axiom.roles)
    pool = list(
        random_weighted_kbs(
            vocabulary,
            scenarios * roles,
            generator,
            max_weight=max_weight,
            density=density,
        )
    )
    first: Optional[WeightedCounterexample] = None
    checked = 0
    start = time.perf_counter()
    for index in range(scenarios):
        scenario = tuple(pool[index * roles + offset] for offset in range(roles))
        checked += 1
        first = axiom.check_instance(operator, scenario)
        if first is not None:
            break
    elapsed = time.perf_counter() - start
    registry = obs.active()
    if registry is not None:
        registry.counter("harness.weighted_checks").inc()
        registry.counter("harness.weighted_scenarios").inc(checked)
        registry.histogram("harness.weighted_check_seconds").observe(elapsed)
    return first


def audit_weighted_operator(
    operator: WeightedOperator,
    vocabulary: Vocabulary,
    scenarios: int = 500,
    rng: int | random.Random = 0,
    jobs: int = 1,
    max_weight: int = 5,
    density: float = 0.5,
    chunk_timeout: Optional[float] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    shm: Optional[bool] = None,
) -> dict[str, Optional[WeightedCounterexample]]:
    """Check all of F1–F8; results keyed by axiom name (None = held).

    With ``jobs > 1`` the whole F1–F8 sweep runs through one process pool
    (:func:`repro.engine.weighted.run_weighted_audit`); the verdict matrix
    is cell-identical to the serial loop at any job count.  ``shm``
    selects the zero-copy arena path (``None`` = auto).
    """
    if jobs > 1:
        from repro.engine.weighted import run_weighted_audit

        outcome = run_weighted_audit(
            operator,
            WEIGHTED_AXIOMS,
            vocabulary,
            scenarios=scenarios,
            rng=rng,
            jobs=jobs,
            max_weight=max_weight,
            density=density,
            chunk_timeout=chunk_timeout,
            max_retries=max_retries,
            shm=shm,
        )
        return outcome.results
    return {
        axiom.name: check_weighted_axiom(
            operator,
            axiom,
            vocabulary,
            scenarios,
            rng,
            max_weight=max_weight,
            density=density,
        )
        for axiom in WEIGHTED_AXIOMS
    }


def render_weighted_audit(
    results: dict[str, dict[str, Optional[WeightedCounterexample]]],
) -> str:
    """Plain-text F1–F8 table: one row per weighted operator.

    ``✓?``/``✗?`` for held/failed — always marked sampled, because the
    weighted scenario space is infinite and never exhaustible.
    """
    axioms = [axiom.name for axiom in WEIGHTED_AXIOMS]
    width = max(len(name) for name in results) + 2
    header = "operator".ljust(width) + " ".join(axiom.rjust(3) for axiom in axioms)
    lines = [header, "-" * len(header)]
    for operator, verdicts in results.items():
        cells = [
            ("✓?" if verdicts.get(axiom) is None else "✗?").rjust(3)
            for axiom in axioms
        ]
        lines.append(operator.ljust(width) + " ".join(cells))
    return "\n".join(lines)
