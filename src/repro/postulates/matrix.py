"""The operator × axiom satisfaction matrix (experiment E7).

The paper classifies operators by which postulate family they satisfy:
Dalal/Satoh/Borgida/Weber are revisions (satisfy R2), Winslett is an
update (satisfies U2 and U8), and the odist operator is claimed to be a
model-fitting operator.  This module computes the full matrix mechanically
and renders it as the table the paper never printed — including the cells
where the mechanical audit disagrees with the paper's claims (the odist
operator's A8).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.engine.resilience import DEFAULT_MAX_RETRIES
from repro.logic.interpretation import Vocabulary
from repro.operators.base import TheoryChangeOperator
from repro.postulates.axioms import (
    ALL_AXIOMS,
    FITTING_AXIOMS,
    REVISION_AXIOMS,
    UPDATE_AXIOMS,
    Axiom,
)
from repro.postulates.counterexample import CheckResult
from repro.postulates.harness import audit_operator

__all__ = ["SatisfactionMatrix", "compute_matrix", "render_matrix"]


@dataclass(frozen=True)
class SatisfactionMatrix:
    """Results of auditing several operators against several axioms.

    ``results[op_name][axiom_name]`` is the full :class:`CheckResult`.
    """

    operators: tuple[str, ...]
    axioms: tuple[str, ...]
    results: Mapping[str, Mapping[str, CheckResult]]
    vocabulary_size: int

    def holds(self, operator: str, axiom: str) -> bool:
        """Whether the audit found the axiom to hold for the operator."""
        return self.results[operator][axiom].holds

    def family_verdict(self, operator: str) -> str:
        """Classify by which full axiom set the operator satisfies."""
        revision = all(self.holds(operator, a.name) for a in REVISION_AXIOMS)
        update = all(self.holds(operator, a.name) for a in UPDATE_AXIOMS)
        fitting = all(self.holds(operator, a.name) for a in FITTING_AXIOMS)
        families = [
            label
            for label, verdict in (
                ("revision", revision),
                ("update", update),
                ("model-fitting", fitting),
            )
            if verdict
        ]
        return "+".join(families) if families else "none"


def compute_matrix(
    operators: Sequence[TheoryChangeOperator],
    vocabulary: Vocabulary,
    axioms: Sequence[Axiom] = ALL_AXIOMS,
    max_scenarios: int = 20_000,
    rng: int | random.Random = 0,
    jobs: int = 1,
    chunk_timeout: float | None = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    shm: bool | None = None,
    journal_dir: str | None = None,
    resume: bool = False,
    impl: str = "dense",
) -> SatisfactionMatrix:
    """Audit every operator against every axiom.

    Over a two-atom vocabulary the two-role axioms are exhaustive (256
    scenarios) and three-role axioms exhaust 4096 scenarios, so the matrix
    is a proof for |𝒯| = 2 and strong evidence beyond.

    ``jobs > 1`` runs the whole sweep through the parallel audit engine —
    one process pool, one operator-roster shipment, batched chunk
    evaluation — with results identical to the serial loop.
    ``chunk_timeout`` / ``max_retries`` configure the engine's resilience
    ladder, ``shm`` its zero-copy arena, and ``journal_dir`` / ``resume``
    its chunk journal; all engine-only (``journal_dir`` on the serial
    path is refused — it has no chunk boundaries to journal).

    ``impl="symbolic"`` audits on BDD level sets: cell-identical to dense
    up to 16 atoms, and the only mode feasible at 30+.  Symbolic sweeps
    are serial and in-process, so they exclude ``jobs > 1``, ``shm`` and
    ``journal_dir``.
    """
    from repro.session.dispatch import ensure_impl

    ensure_impl(impl, ("dense", "symbolic"))
    if impl == "symbolic":
        from repro.errors import ReproError

        if jobs > 1 or shm or journal_dir is not None:
            raise ReproError(
                "impl='symbolic' is serial and in-process: "
                "jobs, --shm and --journal do not apply"
            )
        from repro.symbolic import audit_operator_symbolic, ensure_symbolic_roster

        ensure_symbolic_roster(operators)
        results = {}
        for operator in operators:
            results[operator.name] = audit_operator_symbolic(
                operator, axioms, vocabulary, max_scenarios, rng
            )
        return SatisfactionMatrix(
            operators=tuple(op.name for op in operators),
            axioms=tuple(a.name for a in axioms),
            results=results,
            vocabulary_size=vocabulary.size,
        )
    if jobs > 1:
        from repro.engine.pool import run_audit

        outcome = run_audit(
            operators,
            axioms,
            vocabulary,
            max_scenarios=max_scenarios,
            rng=rng,
            jobs=jobs,
            chunk_timeout=chunk_timeout,
            max_retries=max_retries,
            shm=shm,
            journal_dir=journal_dir,
            resume=resume,
        )
        results = outcome.results
    else:
        if journal_dir is not None:
            from repro.errors import ReproError

            raise ReproError(
                "journaled audits need the chunked engine: pass jobs >= 2"
            )
        results = {}
        for operator in operators:
            results[operator.name] = audit_operator(
                operator, axioms, vocabulary, max_scenarios, rng
            )
    return SatisfactionMatrix(
        operators=tuple(op.name for op in operators),
        axioms=tuple(a.name for a in axioms),
        results=results,
        vocabulary_size=vocabulary.size,
    )


def render_matrix(matrix: SatisfactionMatrix, mark_sampled: bool = True) -> str:
    """Plain-text table: one row per operator, one column per axiom.

    ``✓``/``✗`` for hold/fail; a trailing ``?`` marks sampled (non-
    exhaustive) verdicts.  The last column is the derived family verdict.
    """
    width = max(len(name) for name in matrix.operators) + 2
    header = "operator".ljust(width) + " ".join(
        axiom.rjust(3) for axiom in matrix.axioms
    ) + "  family"
    lines = [header, "-" * len(header)]
    for operator in matrix.operators:
        cells = []
        for axiom in matrix.axioms:
            result = matrix.results[operator][axiom]
            mark = "✓" if result.holds else "✗"
            if mark_sampled and not result.exhaustive:
                mark += "?"
            cells.append(mark.rjust(3))
        verdict = matrix.family_verdict(operator)
        lines.append(operator.ljust(width) + " ".join(cells) + f"  {verdict}")
    return "\n".join(lines)
