"""Structured counterexamples for postulate violations.

When the harness finds an axiom failure it records the full scenario —
which model sets played which role, what the operator produced, and what
the axiom demanded — so the failure can be replayed, minimized, and quoted
in EXPERIMENTS.md without re-running the search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.logic.enumeration import form_formula
from repro.logic.semantics import ModelSet

__all__ = ["Counterexample", "CheckResult"]


@dataclass(frozen=True)
class Counterexample:
    """A witnessed violation of one axiom by one operator.

    Attributes
    ----------
    axiom:
        Axiom identifier, e.g. ``"A8"``.
    operator:
        The operator's ``name``.
    roles:
        The scenario inputs by role name (``psi``, ``mu``, ``phi``,
        ``psi1`` …) as model sets.
    observed:
        Operator outputs relevant to the violation, by label.
    explanation:
        One-sentence account of what the axiom demanded and what happened.
    """

    axiom: str
    operator: str
    roles: Mapping[str, ModelSet]
    observed: Mapping[str, ModelSet]
    explanation: str

    def describe(self) -> str:
        """Multi-line human-readable report, with formulas for each role."""
        lines = [f"{self.operator} violates ({self.axiom}): {self.explanation}"]
        for role, model_set in self.roles.items():
            lines.append(f"  {role} = {model_set!r}  i.e. {form_formula(model_set)}")
        for label, model_set in self.observed.items():
            lines.append(f"  {label} = {model_set!r}")
        return "\n".join(lines)


@dataclass(frozen=True)
class CheckResult:
    """Outcome of checking one axiom for one operator.

    ``holds`` is ``True`` when no counterexample was found across
    ``scenarios_checked`` scenarios; for sampled (non-exhaustive) searches
    that is evidence, not proof, and ``exhaustive`` says which it was.

    ``metrics`` makes non-exhaustive verdicts auditable: the harness
    records at least ``scenarios_checked``, ``truncated`` (an enumerable
    space cut at ``max_scenarios``), and — on the serial path —
    ``elapsed_seconds``.  It is excluded from equality/hashing so that
    result-identity contracts (serial vs parallel, repeated runs) compare
    verdict content, not wall time.
    """

    axiom: str
    operator: str
    holds: bool
    scenarios_checked: int
    exhaustive: bool
    counterexample: Optional[Counterexample] = None
    metrics: Optional[Mapping] = field(default=None, compare=False)

    def __str__(self) -> str:
        status = "holds" if self.holds else "FAILS"
        mode = "exhaustive" if self.exhaustive else "sampled"
        return (
            f"({self.axiom}) {status} for {self.operator} "
            f"[{self.scenarios_checked} scenarios, {mode}]"
        )
