"""Counterexample minimization (delta debugging for axiom violations).

A counterexample found by sampling over a three-atom vocabulary can carry
knowledge bases with many irrelevant models.  :func:`minimize_scenario`
shrinks each role greedily — dropping one model at a time while the axiom
instance still fails — yielding the locally minimal scenario, which is
what EXPERIMENTS.md and the failure reports quote.

Greedy one-at-a-time removal is the classic ddmin granularity-1 pass; for
the model-set sizes involved here (≤ 8 per role) it is exact enough and
always terminates in ``O(total_models²)`` axiom checks.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.logic.semantics import ModelSet
from repro.operators.base import TheoryChangeOperator
from repro.postulates.axioms import Axiom
from repro.postulates.counterexample import Counterexample

__all__ = ["minimize_scenario", "minimized_counterexample"]


def _still_fails(
    operator: TheoryChangeOperator, axiom: Axiom, scenario: Sequence[ModelSet]
) -> bool:
    return axiom.check_instance(operator, scenario) is not None


def minimize_scenario(
    operator: TheoryChangeOperator,
    axiom: Axiom,
    scenario: Sequence[ModelSet],
) -> tuple[ModelSet, ...]:
    """Shrink a failing scenario to a locally minimal one.

    Precondition: the scenario must actually fail the axiom for the
    operator (raises ``ValueError`` otherwise).  The result still fails,
    and no single model can be removed from any role without the failure
    disappearing.
    """
    current = list(scenario)
    if not _still_fails(operator, axiom, current):
        raise ValueError("scenario does not violate the axiom; nothing to minimize")
    changed = True
    while changed:
        changed = False
        for role_index, role in enumerate(current):
            for mask in role.masks:
                shrunk = ModelSet(
                    role.vocabulary, [m for m in role.masks if m != mask]
                )
                candidate = list(current)
                candidate[role_index] = shrunk
                if _still_fails(operator, axiom, candidate):
                    current = candidate
                    changed = True
                    break
            if changed:
                break
    return tuple(current)


def minimized_counterexample(
    operator: TheoryChangeOperator,
    axiom: Axiom,
    scenario: Sequence[ModelSet],
) -> Optional[Counterexample]:
    """Minimize a failing scenario and re-derive its counterexample.

    Returns ``None`` when the scenario did not fail in the first place.
    """
    if not _still_fails(operator, axiom, scenario):
        return None
    minimal = minimize_scenario(operator, axiom, scenario)
    return axiom.check_instance(operator, minimal)
