"""Executable postulates and the audit harness.

R1–R6 (AGM/KM revision), U1–U8 (KM update), A1–A8 (the paper's
model-fitting axioms), and F1–F8 (weighted fitting), each as a checkable
object; plus exhaustive/sampled quantification, structured
counterexamples, and the E7 satisfaction matrix.
"""

from repro.postulates.axioms import (
    ALL_AXIOMS,
    FITTING_AXIOMS,
    REVISION_AXIOMS,
    UPDATE_AXIOMS,
    Axiom,
    axiom_by_name,
    check_syntax_irrelevance,
)
from repro.postulates.counterexample import CheckResult, Counterexample
from repro.postulates.harness import (
    all_model_sets,
    audit_operator,
    check_axiom,
    exhaustive_scenarios,
    sampled_scenarios,
)
from repro.postulates.minimize import minimize_scenario, minimized_counterexample
from repro.postulates.matrix import (
    SatisfactionMatrix,
    compute_matrix,
    render_matrix,
)
from repro.postulates.weighted_axioms import (
    WEIGHTED_AXIOMS,
    WeightedAxiom,
    WeightedCounterexample,
    audit_weighted_operator,
    check_weighted_axiom,
    random_weighted_kbs,
)

__all__ = [
    "Axiom",
    "axiom_by_name",
    "REVISION_AXIOMS",
    "UPDATE_AXIOMS",
    "FITTING_AXIOMS",
    "ALL_AXIOMS",
    "check_syntax_irrelevance",
    "Counterexample",
    "CheckResult",
    "all_model_sets",
    "exhaustive_scenarios",
    "sampled_scenarios",
    "check_axiom",
    "audit_operator",
    "SatisfactionMatrix",
    "compute_matrix",
    "render_matrix",
    "minimize_scenario",
    "minimized_counterexample",
    "WeightedAxiom",
    "WEIGHTED_AXIOMS",
    "WeightedCounterexample",
    "random_weighted_kbs",
    "check_weighted_axiom",
    "audit_weighted_operator",
]
