"""Executable axioms: R1–R6 (AGM/KM revision), U1–U8 (KM update), and
A1–A8 (the paper's model-fitting postulates).

Each axiom is an :class:`Axiom` object bundling

* its identifier and informal statement,
* the *scenario signature* — which roles it quantifies over
  (``("psi", "mu")``, ``("psi", "mu", "phi")``, ``("psi1", "psi2", "mu")``,
  or ``("psi", "mu1", "mu2")``), and
* a checker that, given an operator and one concrete scenario of model
  sets, returns ``None`` (instance holds) or a
  :class:`~repro.postulates.counterexample.Counterexample`.

The harness (:mod:`repro.postulates.harness`) drives the quantification:
exhaustively over every knowledge base of a small vocabulary, or by seeded
sampling for larger ones.

Implication between formulas is model-set inclusion; equivalence is
model-set equality — all checks run at the semantic level, which matches
the paper's usage (its axioms are stated up to logical equivalence).
Syntax-irrelevance (R4/U4/A4) is checked separately at the formula level
by :func:`check_syntax_irrelevance`, since model-set-level operators
satisfy it by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.logic.enumeration import models
from repro.logic.interpretation import Vocabulary
from repro.logic.semantics import ModelSet
from repro.logic.syntax import Formula, Not
from repro.logic.transform import to_nnf
from repro.operators.base import TheoryChangeOperator
from repro.postulates.counterexample import Counterexample

__all__ = [
    "Axiom",
    "REVISION_AXIOMS",
    "UPDATE_AXIOMS",
    "FITTING_AXIOMS",
    "ALL_AXIOMS",
    "axiom_by_name",
    "check_syntax_irrelevance",
]

Scenario = Sequence[ModelSet]
Checker = Callable[[TheoryChangeOperator, Scenario], Optional[Counterexample]]


@dataclass(frozen=True)
class Axiom:
    """One executable postulate."""

    name: str
    statement: str
    roles: tuple[str, ...]
    checker: Checker

    def check_instance(
        self, operator: TheoryChangeOperator, scenario: Scenario
    ) -> Optional[Counterexample]:
        """Check one concrete instantiation of the axiom."""
        return self.checker(operator, scenario)

    def __repr__(self) -> str:
        return f"Axiom({self.name}: {self.statement})"


def _ce(
    axiom: str,
    operator: TheoryChangeOperator,
    roles: dict[str, ModelSet],
    observed: dict[str, ModelSet],
    explanation: str,
) -> Counterexample:
    return Counterexample(
        axiom=axiom,
        operator=operator.name,
        roles=roles,
        observed=observed,
        explanation=explanation,
    )


# -- success axioms (R1 = U1 = A1) ---------------------------------------------
#
# The shared checkers (success, joint satisfiability, the two conjunction
# directions) are module-level callable classes rather than closures so
# that Axiom objects pickle — the audit engine ships axioms to process-
# pool workers.


@dataclass(frozen=True)
class _SuccessCheck:
    name: str

    def __call__(self, op: TheoryChangeOperator, scenario: Scenario):
        psi, mu = scenario
        result = op.apply_models(psi, mu)
        if not result.issubset(mu):
            return _ce(
                self.name,
                op,
                {"psi": psi, "mu": mu},
                {"result": result},
                "result must imply μ but has models outside Mod(μ)",
            )
        return None


def _make_success(name: str) -> Axiom:
    return Axiom(name, "ψ * μ implies μ", ("psi", "mu"), _SuccessCheck(name))


# -- R2 --------------------------------------------------------------------------


def _check_r2(op: TheoryChangeOperator, scenario: Scenario):
    psi, mu = scenario
    both = psi.intersection(mu)
    if both.is_empty:
        return None
    result = op.apply_models(psi, mu)
    if result != both:
        return _ce(
            "R2",
            op,
            {"psi": psi, "mu": mu},
            {"result": result, "psi_and_mu": both},
            "ψ ∧ μ is satisfiable so the result must equal ψ ∧ μ",
        )
    return None


# -- R3 / A3 / U3 ------------------------------------------------------------------


def _check_r3(op: TheoryChangeOperator, scenario: Scenario):
    psi, mu = scenario
    if mu.is_empty:
        return None
    result = op.apply_models(psi, mu)
    if result.is_empty:
        return _ce(
            "R3",
            op,
            {"psi": psi, "mu": mu},
            {"result": result},
            "μ is satisfiable so the result must be satisfiable",
        )
    return None


@dataclass(frozen=True)
class _JointSatisfiabilityCheck:
    name: str

    def __call__(self, op: TheoryChangeOperator, scenario: Scenario):
        psi, mu = scenario
        if psi.is_empty or mu.is_empty:
            return None
        result = op.apply_models(psi, mu)
        if result.is_empty:
            return _ce(
                self.name,
                op,
                {"psi": psi, "mu": mu},
                {"result": result},
                "ψ and μ are both satisfiable so the result must be",
            )
        return None


def _make_joint_satisfiability(name: str) -> Axiom:
    return Axiom(
        name,
        "if ψ and μ are satisfiable then ψ * μ is satisfiable",
        ("psi", "mu"),
        _JointSatisfiabilityCheck(name),
    )


# -- R5/R6 (= U5, A5/A6) -------------------------------------------------------------


@dataclass(frozen=True)
class _ConjunctionLowerCheck:
    name: str

    def __call__(self, op: TheoryChangeOperator, scenario: Scenario):
        psi, mu, phi = scenario
        left = op.apply_models(psi, mu).intersection(phi)
        right = op.apply_models(psi, mu.intersection(phi))
        if not left.issubset(right):
            return _ce(
                self.name,
                op,
                {"psi": psi, "mu": mu, "phi": phi},
                {"lhs (ψ*μ)∧φ": left, "rhs ψ*(μ∧φ)": right},
                "(ψ * μ) ∧ φ must imply ψ * (μ ∧ φ)",
            )
        return None


def _make_conjunction_lower(name: str) -> Axiom:
    return Axiom(
        name,
        "(ψ * μ) ∧ φ implies ψ * (μ ∧ φ)",
        ("psi", "mu", "phi"),
        _ConjunctionLowerCheck(name),
    )


@dataclass(frozen=True)
class _ConjunctionUpperCheck:
    name: str

    def __call__(self, op: TheoryChangeOperator, scenario: Scenario):
        psi, mu, phi = scenario
        left = op.apply_models(psi, mu).intersection(phi)
        if left.is_empty:
            return None
        right = op.apply_models(psi, mu.intersection(phi))
        if not right.issubset(left):
            return _ce(
                self.name,
                op,
                {"psi": psi, "mu": mu, "phi": phi},
                {"lhs (ψ*μ)∧φ": left, "rhs ψ*(μ∧φ)": right},
                "(ψ * μ) ∧ φ is satisfiable so ψ * (μ ∧ φ) must imply it",
            )
        return None


def _make_conjunction_upper(name: str) -> Axiom:
    return Axiom(
        name,
        "if (ψ * μ) ∧ φ is satisfiable then ψ * (μ ∧ φ) implies (ψ * μ) ∧ φ",
        ("psi", "mu", "phi"),
        _ConjunctionUpperCheck(name),
    )


# -- U2 ---------------------------------------------------------------------------


def _check_u2(op: TheoryChangeOperator, scenario: Scenario):
    psi, mu = scenario
    if not psi.issubset(mu):
        return None
    result = op.apply_models(psi, mu)
    if result != psi:
        return _ce(
            "U2",
            op,
            {"psi": psi, "mu": mu},
            {"result": result},
            "ψ implies μ so ψ * μ must be equivalent to ψ",
        )
    return None


# -- U6 ---------------------------------------------------------------------------


def _check_u6(op: TheoryChangeOperator, scenario: Scenario):
    psi, mu1, mu2 = scenario
    result1 = op.apply_models(psi, mu1)
    result2 = op.apply_models(psi, mu2)
    if result1.issubset(mu2) and result2.issubset(mu1) and result1 != result2:
        return _ce(
            "U6",
            op,
            {"psi": psi, "mu1": mu1, "mu2": mu2},
            {"psi*mu1": result1, "psi*mu2": result2},
            "ψ*μ₁ implies μ₂ and ψ*μ₂ implies μ₁, so the results must match",
        )
    return None


# -- U7 ---------------------------------------------------------------------------


def _check_u7(op: TheoryChangeOperator, scenario: Scenario):
    psi, mu1, mu2 = scenario
    if len(psi) != 1:
        return None
    left = op.apply_models(psi, mu1).intersection(op.apply_models(psi, mu2))
    right = op.apply_models(psi, mu1.union(mu2))
    if not left.issubset(right):
        return _ce(
            "U7",
            op,
            {"psi": psi, "mu1": mu1, "mu2": mu2},
            {"lhs": left, "rhs": right},
            "for singleton ψ, (ψ*μ₁) ∧ (ψ*μ₂) must imply ψ*(μ₁∨μ₂)",
        )
    return None


# -- U8 ---------------------------------------------------------------------------


def _check_u8(op: TheoryChangeOperator, scenario: Scenario):
    psi1, psi2, mu = scenario
    combined = op.apply_models(psi1.union(psi2), mu)
    pointwise = op.apply_models(psi1, mu).union(op.apply_models(psi2, mu))
    if combined != pointwise:
        return _ce(
            "U8",
            op,
            {"psi1": psi1, "psi2": psi2, "mu": mu},
            {"(ψ1∨ψ2)*μ": combined, "(ψ1*μ)∨(ψ2*μ)": pointwise},
            "(ψ₁∨ψ₂)*μ must equal (ψ₁*μ) ∨ (ψ₂*μ)",
        )
    return None


# -- A2 ---------------------------------------------------------------------------


def _check_a2(op: TheoryChangeOperator, scenario: Scenario):
    psi, mu = scenario
    if not psi.is_empty:
        return None
    result = op.apply_models(psi, mu)
    if not result.is_empty:
        return _ce(
            "A2",
            op,
            {"psi": psi, "mu": mu},
            {"result": result},
            "ψ is unsatisfiable so ψ ▷ μ must be unsatisfiable",
        )
    return None


# -- A7 / A8 ------------------------------------------------------------------------


def _check_a7(op: TheoryChangeOperator, scenario: Scenario):
    psi1, psi2, mu = scenario
    left = op.apply_models(psi1, mu).intersection(op.apply_models(psi2, mu))
    right = op.apply_models(psi1.union(psi2), mu)
    if not left.issubset(right):
        return _ce(
            "A7",
            op,
            {"psi1": psi1, "psi2": psi2, "mu": mu},
            {"(ψ1▷μ)∧(ψ2▷μ)": left, "(ψ1∨ψ2)▷μ": right},
            "(ψ₁▷μ) ∧ (ψ₂▷μ) must imply (ψ₁∨ψ₂)▷μ",
        )
    return None


def _check_a8(op: TheoryChangeOperator, scenario: Scenario):
    psi1, psi2, mu = scenario
    left = op.apply_models(psi1, mu).intersection(op.apply_models(psi2, mu))
    if left.is_empty:
        return None
    right = op.apply_models(psi1.union(psi2), mu)
    if not right.issubset(left):
        return _ce(
            "A8",
            op,
            {"psi1": psi1, "psi2": psi2, "mu": mu},
            {"(ψ1▷μ)∧(ψ2▷μ)": left, "(ψ1∨ψ2)▷μ": right},
            "(ψ₁▷μ) ∧ (ψ₂▷μ) is satisfiable so (ψ₁∨ψ₂)▷μ must imply it",
        )
    return None


# -- syntax irrelevance (R4 = U4 = A4) ---------------------------------------------


def check_syntax_irrelevance(
    operator: TheoryChangeOperator,
    psi: Formula,
    mu: Formula,
    vocabulary: Vocabulary,
) -> Optional[Counterexample]:
    """Formula-level (R4/U4/A4): applying the operator to syntactic
    variants (double negations, NNF) must give equivalent results.

    Model-set-level operators pass by construction; this guards operators
    implemented directly on formulas.
    """
    variants = [
        (psi, mu),
        (Not(Not(psi)), mu),
        (psi, Not(Not(mu))),
        (to_nnf(psi), to_nnf(mu)),
    ]
    baseline = models(operator.apply(psi, mu, vocabulary), vocabulary)
    for alt_psi, alt_mu in variants[1:]:
        outcome = models(operator.apply(alt_psi, alt_mu, vocabulary), vocabulary)
        if outcome != baseline:
            return Counterexample(
                axiom="A4",
                operator=operator.name,
                roles={
                    "psi": models(psi, vocabulary),
                    "mu": models(mu, vocabulary),
                },
                observed={"baseline": baseline, "variant": outcome},
                explanation="logically equivalent inputs produced different results",
            )
    return None


# -- axiom registries -----------------------------------------------------------------

REVISION_AXIOMS: tuple[Axiom, ...] = (
    _make_success("R1"),
    Axiom(
        "R2",
        "if ψ ∧ μ is satisfiable then ψ ∘ μ ↔ ψ ∧ μ",
        ("psi", "mu"),
        _check_r2,
    ),
    Axiom(
        "R3",
        "if μ is satisfiable then ψ ∘ μ is satisfiable",
        ("psi", "mu"),
        _check_r3,
    ),
    _make_conjunction_lower("R5"),
    _make_conjunction_upper("R6"),
)

UPDATE_AXIOMS: tuple[Axiom, ...] = (
    _make_success("U1"),
    Axiom(
        "U2",
        "if ψ implies μ then ψ ⋄ μ is equivalent to ψ",
        ("psi", "mu"),
        _check_u2,
    ),
    _make_joint_satisfiability("U3"),
    _make_conjunction_lower("U5"),
    Axiom(
        "U6",
        "if ψ⋄μ₁ implies μ₂ and ψ⋄μ₂ implies μ₁ then ψ⋄μ₁ ↔ ψ⋄μ₂",
        ("psi", "mu1", "mu2"),
        _check_u6,
    ),
    Axiom(
        "U7",
        "for singleton ψ, (ψ⋄μ₁) ∧ (ψ⋄μ₂) implies ψ⋄(μ₁∨μ₂)",
        ("psi", "mu1", "mu2"),
        _check_u7,
    ),
    Axiom(
        "U8",
        "(ψ₁∨ψ₂) ⋄ μ ↔ (ψ₁⋄μ) ∨ (ψ₂⋄μ)",
        ("psi1", "psi2", "mu"),
        _check_u8,
    ),
)

FITTING_AXIOMS: tuple[Axiom, ...] = (
    _make_success("A1"),
    Axiom(
        "A2",
        "if ψ is unsatisfiable then ψ ▷ μ is unsatisfiable",
        ("psi", "mu"),
        _check_a2,
    ),
    _make_joint_satisfiability("A3"),
    _make_conjunction_lower("A5"),
    _make_conjunction_upper("A6"),
    Axiom(
        "A7",
        "(ψ₁▷μ) ∧ (ψ₂▷μ) implies (ψ₁∨ψ₂)▷μ",
        ("psi1", "psi2", "mu"),
        _check_a7,
    ),
    Axiom(
        "A8",
        "if satisfiable, (ψ₁∨ψ₂)▷μ implies (ψ₁▷μ) ∧ (ψ₂▷μ)",
        ("psi1", "psi2", "mu"),
        _check_a8,
    ),
)

ALL_AXIOMS: tuple[Axiom, ...] = REVISION_AXIOMS + UPDATE_AXIOMS + FITTING_AXIOMS

_BY_NAME = {axiom.name: axiom for axiom in ALL_AXIOMS}


def axiom_by_name(name: str) -> Axiom:
    """Look up an axiom by its identifier (e.g. ``"A8"``)."""
    from repro.errors import PostulateError

    try:
        return _BY_NAME[name]
    except KeyError:
        raise PostulateError(
            f"unknown axiom {name!r}; known: {sorted(_BY_NAME)}"
        ) from None
