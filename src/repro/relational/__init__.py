"""Relational layer: finite-domain grounding of the paper's open problem.

Section 5 asks for a first-order extension of arbitration.  Over finite
domains the grounding route is exact: relations become families of ground
propositional atoms, quantifiers expand over the domain, and every
operator in the library applies unchanged.  This package provides the
schema/grounding machinery, extensional databases with closed- and
open-world readings, and a relational knowledge base with insert/delete/
arbitrate verbs plus certain/possible query answers.
"""

from repro.relational.database import (
    Fact,
    RelationalDatabase,
    RelationalKnowledgeBase,
)
from repro.relational.schema import Relation, Schema

__all__ = [
    "Relation",
    "Schema",
    "Fact",
    "RelationalDatabase",
    "RelationalKnowledgeBase",
]
