"""Relational databases with theory-change semantics.

A :class:`RelationalDatabase` is a set of ground facts over a
:class:`~repro.relational.schema.Schema` — read **closed-world** (absent
facts are false) into one propositional interpretation, or **open** as the
conjunction of its positive facts.  :class:`RelationalKnowledgeBase`
grounds everything into the propositional engine and exposes the
database-flavoured change verbs: insert and delete facts (by revision or
update), enforce universally quantified integrity constraints, and
arbitrate against another party's database — the heterogeneous-integration
scenario of the paper's introduction, now with actual relations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import VocabularyError
from repro.kb.knowledge_base import KnowledgeBase
from repro.logic.interpretation import Interpretation
from repro.logic.syntax import Formula, Not, conjoin
from repro.relational.schema import Schema

__all__ = ["Fact", "RelationalDatabase", "RelationalKnowledgeBase"]


@dataclass(frozen=True)
class Fact:
    """A ground fact ``R(c₁,…,cₖ)``."""

    relation: str
    constants: tuple[str, ...]

    @classmethod
    def of(cls, relation: str, *constants: str) -> "Fact":
        """Convenience constructor: ``Fact.of("Likes", "ann", "bob")``."""
        return cls(relation, tuple(constants))

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(self.constants)})"


class RelationalDatabase:
    """An extensional database: a finite set of ground facts."""

    def __init__(self, schema: Schema, facts: Iterable[Fact] = ()):
        self._schema = schema
        validated: set[Fact] = set()
        for fact in facts:
            # atom_name validates relation/arity/constants.
            schema.atom_name(fact.relation, *fact.constants)
            validated.add(fact)
        self._facts = frozenset(validated)

    @property
    def schema(self) -> Schema:
        """The schema the facts range over."""
        return self._schema

    @property
    def facts(self) -> frozenset[Fact]:
        """The stored ground facts."""
        return self._facts

    def __contains__(self, fact: Fact) -> bool:
        return fact in self._facts

    def with_fact(self, fact: Fact) -> "RelationalDatabase":
        """A copy including ``fact``."""
        return RelationalDatabase(self._schema, self._facts | {fact})

    def without_fact(self, fact: Fact) -> "RelationalDatabase":
        """A copy excluding ``fact``."""
        return RelationalDatabase(self._schema, self._facts - {fact})

    # -- propositional readings -------------------------------------------------

    def closed_world_interpretation(self) -> Interpretation:
        """The single interpretation making exactly the stored facts true."""
        vocabulary = self._schema.vocabulary()
        names = {
            self._schema.atom_name(fact.relation, *fact.constants)
            for fact in self._facts
        }
        return vocabulary.interpretation(names)

    def closed_world_formula(self) -> Formula:
        """The complete theory of the closed-world reading (every ground
        atom asserted positively or negatively)."""
        literals: list[Formula] = []
        true_names = {
            self._schema.atom_name(fact.relation, *fact.constants)
            for fact in self._facts
        }
        for name in self._schema.ground_atoms():
            atom = self._schema.atom(*name.split("__"))
            literals.append(atom if name in true_names else Not(atom))
        return conjoin(literals)

    def open_world_formula(self) -> Formula:
        """Just the positive facts, leaving unstated atoms open."""
        if not self._facts:
            from repro.logic.syntax import TOP

            return TOP
        return conjoin(
            self._schema.atom(fact.relation, *fact.constants)
            for fact in sorted(self._facts, key=str)
        )

    def __repr__(self) -> str:
        inside = ", ".join(sorted(str(fact) for fact in self._facts))
        return f"RelationalDatabase({{{inside}}})"


class RelationalKnowledgeBase:
    """A knowledge base over a relational schema, driven by the
    propositional theory-change engine underneath.

    ``closed_world=True`` (default) starts from the database's complete
    theory; ``False`` keeps unstated facts open.  Integrity constraints are
    enforced through the underlying constrained
    :class:`~repro.kb.knowledge_base.KnowledgeBase`.
    """

    def __init__(
        self,
        database: RelationalDatabase,
        constraints: Optional[Formula] = None,
        closed_world: bool = True,
        revision=None,
        update=None,
        fitting=None,
    ):
        self._schema = database.schema
        source = (
            database.closed_world_formula()
            if closed_world
            else database.open_world_formula()
        )
        self._kb = KnowledgeBase(
            source,
            atoms=list(self._schema.vocabulary().atoms),
            constraints=constraints,
            revision=revision,
            update=update,
            fitting=fitting,
        )

    @classmethod
    def _wrap(cls, schema: Schema, kb: KnowledgeBase) -> "RelationalKnowledgeBase":
        instance = cls.__new__(cls)
        instance._schema = schema
        instance._kb = kb
        return instance

    # -- accessors ---------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The relational schema."""
        return self._schema

    @property
    def kb(self) -> KnowledgeBase:
        """The underlying propositional knowledge base."""
        return self._kb

    @property
    def satisfiable(self) -> bool:
        """Whether the knowledge base is consistent."""
        return self._kb.satisfiable

    def _fact_atom(self, fact: Fact):
        return self._schema.atom(fact.relation, *fact.constants)

    # -- queries -----------------------------------------------------------------

    def holds(self, fact: Fact) -> str:
        """Three-valued fact query: ``"yes"``, ``"no"``, or ``"unknown"``."""
        return self._kb.ask(self._fact_atom(fact))

    def certain_facts(self) -> list[Fact]:
        """Facts true in every model (the certain answers)."""
        certain: list[Fact] = []
        for relation in self._schema.relations:
            for args in self._schema.tuples(relation.arity):
                fact = Fact(relation.name, args)
                if self._kb.entails(self._fact_atom(fact)):
                    certain.append(fact)
        return certain

    def possible_facts(self) -> list[Fact]:
        """Facts true in at least one model (the possible answers)."""
        possible: list[Fact] = []
        for relation in self._schema.relations:
            for args in self._schema.tuples(relation.arity):
                fact = Fact(relation.name, args)
                if self._kb.consistent_with(self._fact_atom(fact)):
                    possible.append(fact)
        return possible

    # -- change verbs -------------------------------------------------------------

    def insert(self, fact: Fact, how: str = "revise") -> "RelationalKnowledgeBase":
        """Add a fact (``how`` ∈ {"revise", "update"})."""
        return self._change(how, self._fact_atom(fact))

    def delete(self, fact: Fact, how: str = "revise") -> "RelationalKnowledgeBase":
        """Remove a fact (assert its negation)."""
        return self._change(how, Not(self._fact_atom(fact)))

    def _change(self, how: str, formula: Formula) -> "RelationalKnowledgeBase":
        if how == "revise":
            changed = self._kb.revise(formula)
        elif how == "update":
            changed = self._kb.update(formula)
        else:
            raise VocabularyError(f"unknown change mode {how!r}")
        return RelationalKnowledgeBase._wrap(self._schema, changed)

    def arbitrate_with(
        self, other: "RelationalKnowledgeBase | RelationalDatabase | Formula"
    ) -> "RelationalKnowledgeBase":
        """Consensus with another party's theory (equal voices)."""
        if isinstance(other, RelationalKnowledgeBase):
            voice: Formula = other._kb.to_formula(minimize=False)
        elif isinstance(other, RelationalDatabase):
            voice = other.closed_world_formula()
        else:
            voice = other
        return RelationalKnowledgeBase._wrap(
            self._schema, self._kb.arbitrate(voice)
        )

    def __repr__(self) -> str:
        certain = ", ".join(str(fact) for fact in self.certain_facts())
        return f"RelationalKB(certain=[{certain}])"
