"""Relational schemas over finite domains.

The paper's first open problem asks for an extension of arbitration from
propositional to first-order knowledge.  Over a *finite* domain the
standard move — and the only fully tractable one — is grounding: every
relation ``R`` of arity ``k`` contributes one propositional atom
``R(c₁,…,cₖ)`` per tuple of domain constants, and first-order sentences
with quantifiers ranging over the domain expand into finite conjunctions
and disjunctions.  This module provides the schema and quantifier
expansion; :mod:`repro.relational.database` builds databases and change
operations on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import VocabularyError
from repro.logic.interpretation import Vocabulary
from repro.logic.syntax import Atom, Formula, conjoin, disjoin

__all__ = ["Relation", "Schema"]


@dataclass(frozen=True)
class Relation:
    """A named relation of fixed arity."""

    name: str
    arity: int

    def __post_init__(self) -> None:
        if not self.name or not self.name[0].isalpha():
            raise VocabularyError(
                f"relation name must start with a letter: {self.name!r}"
            )
        if "__" in self.name:
            raise VocabularyError(
                f"relation names must be free of '__' (it separates the "
                f"ground-atom parts): {self.name!r}"
            )
        if self.arity < 0:
            raise VocabularyError(f"arity must be non-negative: {self.arity}")


class Schema:
    """A finite domain plus a set of relations — the grounding context.

    >>> schema = Schema(["ann", "bob"], [Relation("Likes", 2)])
    >>> schema.atom_count
    4
    >>> str(schema.atom("Likes", "ann", "bob"))
    'Likes__ann__bob'
    """

    def __init__(
        self, domain: Sequence[str], relations: Iterable[Relation]
    ):
        domain_list = list(domain)
        if not domain_list:
            raise VocabularyError("the domain must contain at least one constant")
        if len(set(domain_list)) != len(domain_list):
            raise VocabularyError("domain constants must be distinct")
        for constant in domain_list:
            if not constant or "__" in constant:
                raise VocabularyError(
                    f"constants must be non-empty and free of '__': {constant!r}"
                )
        relation_list = list(relations)
        names = [relation.name for relation in relation_list]
        if len(set(names)) != len(names):
            raise VocabularyError("relation names must be distinct")
        self._domain = tuple(domain_list)
        self._relations = {relation.name: relation for relation in relation_list}

    # -- accessors ---------------------------------------------------------------

    @property
    def domain(self) -> tuple[str, ...]:
        """The domain constants, in declaration order."""
        return self._domain

    @property
    def relations(self) -> tuple[Relation, ...]:
        """The declared relations, sorted by name."""
        return tuple(
            self._relations[name] for name in sorted(self._relations)
        )

    @property
    def atom_count(self) -> int:
        """Total ground atoms: Σ |domain|^arity over relations."""
        return sum(
            len(self._domain) ** relation.arity
            for relation in self._relations.values()
        )

    def relation(self, name: str) -> Relation:
        """Look up a relation by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise VocabularyError(
                f"unknown relation {name!r}; known: {sorted(self._relations)}"
            ) from None

    # -- grounding ---------------------------------------------------------------

    def atom_name(self, relation_name: str, *constants: str) -> str:
        """The propositional atom name for a ground fact:
        ``R__c1__c2`` (``__``-separated to stay identifier-like)."""
        relation = self.relation(relation_name)
        if len(constants) != relation.arity:
            raise VocabularyError(
                f"{relation_name} has arity {relation.arity}, "
                f"got {len(constants)} argument(s)"
            )
        for constant in constants:
            if constant not in self._domain:
                raise VocabularyError(
                    f"constant {constant!r} is not in the domain"
                )
        return "__".join((relation_name, *constants))

    def atom(self, relation_name: str, *constants: str) -> Atom:
        """The propositional atom for a ground fact."""
        return Atom(self.atom_name(relation_name, *constants))

    def tuples(self, arity: int) -> Iterator[tuple[str, ...]]:
        """All ``arity``-tuples of domain constants."""
        return product(self._domain, repeat=arity)

    def ground_atoms(self) -> list[str]:
        """Every ground atom name, deterministically ordered."""
        names: list[str] = []
        for relation in self.relations:
            for args in self.tuples(relation.arity):
                names.append(self.atom_name(relation.name, *args))
        return names

    def vocabulary(self) -> Vocabulary:
        """The propositional vocabulary 𝒯 of the grounding."""
        return Vocabulary(self.ground_atoms())

    # -- quantifier expansion -------------------------------------------------------

    def forall(
        self, arity: int, template: Callable[..., Formula]
    ) -> Formula:
        """``∀x₁…x_arity . template(x₁,…)`` expanded over the domain.

        ``template`` receives domain constants and returns a formula;
        the result is the conjunction over all tuples.
        """
        return conjoin(template(*args) for args in self.tuples(arity))

    def exists(
        self, arity: int, template: Callable[..., Formula]
    ) -> Formula:
        """``∃x₁…x_arity . template(x₁,…)`` expanded over the domain."""
        return disjoin(template(*args) for args in self.tuples(arity))
