"""Dalal's original dilation algorithm (an algorithmic alternative).

Dalal [Dal88] did not define his operator through a ranking: he defined a
syntactic transformation ``G`` whose semantic content is *dilation* — grow
the knowledge base's model set by Hamming radius 1 — and revised by
dilating ψ just until it meets μ:

    ``ψ ∘ μ  =  G^k(ψ) ∧ μ``   for the least ``k`` with ``G^k(ψ) ∧ μ``
    satisfiable.

This is semantically identical to the faithful-assignment formulation in
:class:`repro.operators.revision.DalalRevision` (the test suite proves the
equivalence exhaustively and property-wise) but has a different cost
profile: it never ranks the whole interpretation space, touching only the
balls around Mod(ψ) up to the actual minimum distance — cheap when the
conflict is small, expensive only when ψ and μ are far apart.

The same dilation primitive also yields an alternative odist engine:
``odist(ψ, I) ≤ k`` iff ``I`` lies in the *intersection* of the k-balls
around all models of ψ, so the paper's fitting operator is
"intersect-of-dilations" the way Dalal's revision is "union-of-dilations"
(:class:`DilationFitting`).
"""

from __future__ import annotations

from repro.logic.interpretation import Vocabulary
from repro.logic.semantics import ModelSet
from repro.operators.base import OperatorFamily, TheoryChangeOperator

__all__ = ["dilate", "ball", "DilationDalalRevision", "DilationFitting"]


def dilate(model_set: ModelSet) -> ModelSet:
    """One step of Hamming dilation: every model plus all its one-flip
    neighbours (the semantic content of Dalal's ``G``)."""
    vocabulary = model_set.vocabulary
    masks = set(model_set.masks)
    grown = set(masks)
    for mask in masks:
        for bit_index in range(vocabulary.size):
            grown.add(mask ^ (1 << bit_index))
    return ModelSet(vocabulary, grown)


def ball(center_mask: int, radius: int, vocabulary: Vocabulary) -> ModelSet:
    """The Hamming ball of the given radius around one interpretation."""
    masks = [
        mask
        for mask in range(vocabulary.interpretation_count)
        if (mask ^ center_mask).bit_count() <= radius
    ]
    return ModelSet(vocabulary, masks)


class DilationDalalRevision(TheoryChangeOperator):
    """Dalal's revision, computed by iterated dilation.

    Dilate Mod(ψ) one radius at a time; stop at the first radius where the
    dilation meets Mod(μ).  The *newly reached* μ-models at that radius
    are exactly the Dalal result (models of μ at minimal distance from ψ).
    """

    name = "dalal-dilation"
    family = OperatorFamily.REVISION

    def apply_models(self, psi: ModelSet, mu: ModelSet) -> ModelSet:
        self._check_vocabularies(psi, mu)
        if psi.is_empty:
            return mu
        if mu.is_empty:
            return mu
        current = psi
        for _ in range(psi.vocabulary.size + 1):
            overlap = current.intersection(mu)
            if not overlap.is_empty:
                return overlap
            current = dilate(current)
        # Unreachable: the full space is covered within |𝒯| dilations.
        raise AssertionError("dilation failed to reach a satisfiable overlap")


class DilationFitting(TheoryChangeOperator):
    """The paper's odist fitting, computed by intersected dilation.

    ``odist(ψ, I) ≤ k`` iff ``I`` belongs to the k-ball around *every*
    model of ψ; the fitting result is the μ-models in the smallest such
    intersection.  Grows per-model balls in lockstep, stopping at the
    first radius whose common intersection meets μ — no global ranking.
    """

    name = "odist-dilation"
    family = OperatorFamily.MODEL_FITTING

    def apply_models(self, psi: ModelSet, mu: ModelSet) -> ModelSet:
        self._check_vocabularies(psi, mu)
        vocabulary = psi.vocabulary
        if psi.is_empty:
            return ModelSet.empty(vocabulary)  # axiom A2
        if mu.is_empty:
            return mu
        balls = [ModelSet(vocabulary, [mask]) for mask in psi.masks]
        for _ in range(vocabulary.size + 1):
            common = balls[0]
            for grown in balls[1:]:
                common = common.intersection(grown)
            candidates = common.intersection(mu)
            if not candidates.is_empty:
                return candidates
            balls = [dilate(grown) for grown in balls]
        raise AssertionError("dilation failed to reach a satisfiable overlap")
