"""Baseline revision operators: Dalal, Satoh, Borgida, and Weber.

Section 1 of the paper cites these as concrete theory-change proposals,
and Theorem 3.2's discussion relies on Katsuno–Mendelzon's result that
each of them satisfies axiom (R2) — hence none of them can be a
model-fitting operator.  The library implements all four so the E7
postulate matrix can verify those classifications mechanically.

References (as cited in the paper):

* Dalal 1988 — cardinality-minimal change: accept the models of μ at
  minimum Hamming distance from ψ.
* Satoh 1988 — set-inclusion-minimal change: accept the models of μ whose
  symmetric difference with some model of ψ is ⊆-minimal *globally*.
* Borgida 1985 — if ψ ∧ μ is consistent take it; otherwise make a
  Winslett-style inclusion-minimal change per model of ψ.
* Weber 1986 — compute Satoh's minimal difference atoms, forget them, and
  conjoin with μ.
"""

from __future__ import annotations

from typing import Optional

from repro.distances import kernels
from repro.distances.base import InterpretationDistance
from repro.logic.semantics import ModelSet
from repro.operators.base import (
    AssignmentOperator,
    OperatorFamily,
    TheoryChangeOperator,
)
from repro.orders.cache import DEFAULT_CACHE_SIZE
from repro.orders.faithful import dalal_assignment

__all__ = [
    "DalalRevision",
    "SatohRevision",
    "BorgidaRevision",
    "WeberRevision",
]


class DalalRevision(AssignmentOperator):
    """Dalal's revision: ``Mod(ψ ∘ μ) = Min(Mod(μ), ≤ψ)`` where
    ``I ≤ψ J iff dist(ψ, I) ≤ dist(ψ, J)`` and
    ``dist(ψ, I) = min_{J ∈ Mod(ψ)} dist(I, J)``.

    Section 2 of the paper walks through exactly this construction and
    notes that, by the KM characterization, it is a true revision operator
    (it satisfies R1–R6).
    """

    def __init__(
        self,
        distance: Optional[InterpretationDistance] = None,
        vectorized: bool = True,
        cache_size: Optional[int] = DEFAULT_CACHE_SIZE,
    ):
        super().__init__(
            dalal_assignment(distance, vectorized, cache_size),
            name="dalal",
            family=OperatorFamily.REVISION,
            unsat_base="accept-new",
        )


def _minimal_diff_sets(diffs: set[int]) -> set[int]:
    """The ⊆-minimal elements of a set of difference bitmasks."""
    return kernels.minimal_subset_masks(diffs)


class SatohRevision(TheoryChangeOperator):
    """Satoh's revision: global set-inclusion-minimal change.

    Let ``Δ(I, J) = I Δ J`` (as an atom set, here a bitmask).  Collect
    ``{Δ(I, J) : I ∈ Mod(μ), J ∈ Mod(ψ)}``, keep its ⊆-minimal elements,
    and accept the models of μ that realize one of them.
    """

    name = "satoh"
    family = OperatorFamily.REVISION

    def apply_models(self, psi: ModelSet, mu: ModelSet) -> ModelSet:
        self._check_vocabularies(psi, mu)
        if psi.is_empty:
            return mu
        if mu.is_empty:
            return mu
        diffs = kernels.pairwise_diffs(mu.masks, psi.masks)
        minimal = _minimal_diff_sets(diffs)
        chosen = [
            mu_mask
            for mu_mask in mu.masks
            if any((mu_mask ^ psi_mask) in minimal for psi_mask in psi.masks)
        ]
        return ModelSet(mu.vocabulary, chosen)


class BorgidaRevision(TheoryChangeOperator):
    """Borgida's revision.

    If ψ ∧ μ is consistent the result is ψ ∧ μ (this is what forces axiom
    R2).  Otherwise each model ``J`` of ψ is repaired independently to the
    models of μ with ⊆-minimal difference from ``J``, and the results are
    unioned — Winslett's update rule applied only in the inconsistent case.
    """

    name = "borgida"
    family = OperatorFamily.REVISION

    def apply_models(self, psi: ModelSet, mu: ModelSet) -> ModelSet:
        self._check_vocabularies(psi, mu)
        if psi.is_empty:
            return mu
        both = psi.intersection(mu)
        if not both.is_empty:
            return both
        chosen: set[int] = set()
        for psi_mask in psi.masks:
            diffs = {mu_mask ^ psi_mask for mu_mask in mu.masks}
            minimal = _minimal_diff_sets(diffs)
            chosen.update(
                mu_mask
                for mu_mask in mu.masks
                if (mu_mask ^ psi_mask) in minimal
            )
        return ModelSet(mu.vocabulary, chosen)


class WeberRevision(TheoryChangeOperator):
    """Weber's revision.

    Compute Satoh's ⊆-minimal symmetric differences, take the union ``D``
    of their atoms, and accept every model of μ that agrees with some model
    of ψ on all atoms outside ``D`` (i.e. forget ``D`` in ψ, then conjoin
    with μ).
    """

    name = "weber"
    family = OperatorFamily.REVISION

    def apply_models(self, psi: ModelSet, mu: ModelSet) -> ModelSet:
        self._check_vocabularies(psi, mu)
        if psi.is_empty:
            return mu
        if mu.is_empty:
            return mu
        diffs = kernels.pairwise_diffs(mu.masks, psi.masks)
        minimal = _minimal_diff_sets(diffs)
        forgotten = 0
        for diff in minimal:
            forgotten |= diff
        keep = ~forgotten
        agreeable = {psi_mask & keep for psi_mask in psi.masks}
        chosen = [
            mu_mask for mu_mask in mu.masks if (mu_mask & keep) in agreeable
        ]
        return ModelSet(mu.vocabulary, chosen)
