"""Baseline theory-change operators from the literature the paper builds on.

Revision operators (Dalal, Satoh, Borgida, Weber) satisfy R2 and therefore
— by Theorem 3.2 — cannot be model-fitting operators; update operators
(Winslett, Forbus) satisfy U8 with the same consequence.  The paper's own
operators live in :mod:`repro.core`.
"""

from repro.operators.base import (
    AssignmentOperator,
    OperatorFamily,
    TheoryChangeOperator,
)
from repro.operators.revision import (
    BorgidaRevision,
    DalalRevision,
    SatohRevision,
    WeberRevision,
)
from repro.operators.contraction import (
    CONTRACTION_AXIOMS,
    ContractionOperator,
    ErasureOperator,
    check_contraction_axiom,
)
from repro.operators.dilation import (
    DilationDalalRevision,
    DilationFitting,
    ball,
    dilate,
)
from repro.operators.simple import DrasticFitting, FullMeetRevision
from repro.operators.update import ForbusUpdate, WinslettUpdate

__all__ = [
    "TheoryChangeOperator",
    "AssignmentOperator",
    "OperatorFamily",
    "DalalRevision",
    "SatohRevision",
    "BorgidaRevision",
    "WeberRevision",
    "WinslettUpdate",
    "ForbusUpdate",
    "FullMeetRevision",
    "DrasticFitting",
    "ContractionOperator",
    "ErasureOperator",
    "CONTRACTION_AXIOMS",
    "check_contraction_axiom",
    "DilationDalalRevision",
    "DilationFitting",
    "dilate",
    "ball",
]
