"""Degenerate baseline operators: full-meet revision and drastic fitting.

These are the coarsest members of their families — what you get when the
underlying distance cannot tell interpretations apart (the drastic
distance).  They anchor the ablation axis of experiment E10 and give the
postulate harness easy-to-reason-about subjects:

* :class:`FullMeetRevision` — ``ψ ∧ μ`` when consistent, else ``μ``.
  Equivalent to Dalal's construction over the drastic distance; a genuine
  KM revision (satisfies R1–R6) and, like every R2 operator, barred from
  model-fitting by Theorem 3.2.
* :class:`DrasticFitting` — the paper's odist construction over the
  drastic distance.  For a singleton ψ it behaves like full meet; for any
  larger ψ every interpretation is at drastic-max distance 1 from *some*
  model, so the pre-order collapses and ``ψ ▷ μ = μ``.
"""

from __future__ import annotations

from repro.core.fitting import ModelFittingOperator
from repro.distances.base import DrasticDistance
from repro.operators.base import AssignmentOperator, OperatorFamily
from repro.orders.faithful import dalal_assignment
from repro.orders.loyal import max_distance_assignment

__all__ = ["FullMeetRevision", "DrasticFitting"]


class FullMeetRevision(AssignmentOperator):
    """Full-meet (drastic) revision: keep ``ψ ∧ μ`` if consistent, else
    accept ``μ`` whole."""

    def __init__(self) -> None:
        super().__init__(
            dalal_assignment(DrasticDistance()),
            name="full-meet",
            family=OperatorFamily.REVISION,
            unsat_base="accept-new",
        )


class DrasticFitting(ModelFittingOperator):
    """Model-fitting over the drastic distance (coarsest odist)."""

    def __init__(self) -> None:
        super().__init__(
            max_distance_assignment(DrasticDistance()), name="drastic-fitting"
        )
