"""Contraction and erasure — the retraction duals of revision and update.

The AGM tradition the paper builds on (Alchourrón–Gärdenfors–Makinson
[AGM85], Katsuno–Mendelzon [KM91/KM92]) pairs each *addition* operator with
a *retraction* operator through the Harper identity:

* **contraction** (dual of revision):  ``Mod(ψ − μ) = Mod(ψ) ∪ Mod(ψ ∘ ¬μ)``
  — stop believing μ, keeping as much of ψ as possible;
* **erasure** (dual of update):        ``Mod(ψ ⊖ μ) = Mod(ψ) ∪ Mod(ψ ⋄ ¬μ)``
  — make μ no longer necessarily true after a change of the world.

Both are *derived* operators: wrap any revision (or update) operator and
the identity does the rest.  The classical KM contraction postulates
(C1–C5 in their propositional rendering) are provided as executable checks
so the harness can audit derived retractions the same way it audits
additions — completing the theory-change family around the paper's
arbitration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.logic.semantics import ModelSet
from repro.operators.base import OperatorFamily, TheoryChangeOperator
from repro.postulates.counterexample import Counterexample

__all__ = [
    "ContractionOperator",
    "ErasureOperator",
    "ContractionAxiom",
    "CONTRACTION_AXIOMS",
    "check_contraction_axiom",
]


class ContractionOperator(TheoryChangeOperator):
    """Contraction derived from a revision operator via the Harper
    identity: ``Mod(ψ − μ) = Mod(ψ) ∪ Mod(ψ ∘ ¬μ)``."""

    family = OperatorFamily.OTHER

    def __init__(self, revision: TheoryChangeOperator):
        self._revision = revision
        self.name = f"contraction[{revision.name}]"

    @property
    def base_operator(self) -> TheoryChangeOperator:
        """The revision operator the contraction is derived from."""
        return self._revision

    def apply_models(self, psi: ModelSet, mu: ModelSet) -> ModelSet:
        self._check_vocabularies(psi, mu)
        not_mu = mu.complement()
        return psi.union(self._revision.apply_models(psi, not_mu))


class ErasureOperator(TheoryChangeOperator):
    """Erasure derived from an update operator:
    ``Mod(ψ ⊖ μ) = Mod(ψ) ∪ Mod(ψ ⋄ ¬μ)`` (KM's symmetric erasure)."""

    family = OperatorFamily.OTHER

    def __init__(self, update: TheoryChangeOperator):
        self._update = update
        self.name = f"erasure[{update.name}]"

    @property
    def base_operator(self) -> TheoryChangeOperator:
        """The update operator the erasure is derived from."""
        return self._update

    def apply_models(self, psi: ModelSet, mu: ModelSet) -> ModelSet:
        self._check_vocabularies(psi, mu)
        not_mu = mu.complement()
        return psi.union(self._update.apply_models(psi, not_mu))


# -- executable contraction postulates (KM propositional rendering) -----------


@dataclass(frozen=True)
class ContractionAxiom:
    """One executable contraction postulate."""

    name: str
    statement: str
    checker: "object"

    def check_instance(
        self, operator: TheoryChangeOperator, scenario: Sequence[ModelSet]
    ) -> Optional[Counterexample]:
        """Check one (ψ, μ) instance."""
        return self.checker(operator, scenario)


def _ce(name, operator, psi, mu, observed, explanation):
    return Counterexample(
        axiom=name,
        operator=operator.name,
        roles={"psi": psi, "mu": mu},
        observed=observed,
        explanation=explanation,
    )


def _check_c1(operator, scenario):
    """C1 (inclusion): ψ implies ψ − μ."""
    psi, mu = scenario
    result = operator.apply_models(psi, mu)
    if not psi.issubset(result):
        return _ce("C1", operator, psi, mu, {"result": result},
                   "ψ must imply ψ − μ (contraction only retracts)")
    return None


def _check_c2(operator, scenario):
    """C2 (vacuity): if ψ does not imply μ then ψ − μ ≡ ψ."""
    psi, mu = scenario
    if psi.issubset(mu):
        return None
    result = operator.apply_models(psi, mu)
    if result != psi:
        return _ce("C2", operator, psi, mu, {"result": result},
                   "ψ ⊭ μ, so contraction must change nothing")
    return None


def _check_c3(operator, scenario):
    """C3 (success): if μ is not a tautology then ψ − μ does not imply μ
    (for satisfiable ψ)."""
    psi, mu = scenario
    if mu.is_universe or psi.is_empty:
        return None
    result = operator.apply_models(psi, mu)
    if result.issubset(mu):
        return _ce("C3", operator, psi, mu, {"result": result},
                   "μ is no tautology, so ψ − μ must not still imply μ")
    return None


def _check_c4(operator, scenario):
    """C4 (recovery): (ψ − μ) ∧ μ implies ψ."""
    psi, mu = scenario
    result = operator.apply_models(psi, mu).intersection(mu)
    if not result.issubset(psi):
        return _ce("C4", operator, psi, mu, {"(ψ−μ)∧μ": result},
                   "re-adding μ after contracting it must recover ψ")
    return None


def _check_c5(operator, scenario):
    """C5 (extensionality at the model level): the result depends only on
    Mod(μ) — structurally true for model-set operators; checked as
    determinism."""
    psi, mu = scenario
    first = operator.apply_models(psi, mu)
    second = operator.apply_models(psi, mu)
    if first != second:
        return _ce("C5", operator, psi, mu,
                   {"first": first, "second": second},
                   "operator is not deterministic")
    return None


CONTRACTION_AXIOMS: tuple[ContractionAxiom, ...] = (
    ContractionAxiom("C1", "ψ implies ψ − μ", _check_c1),
    ContractionAxiom("C2", "if ψ ⊭ μ then ψ − μ ≡ ψ", _check_c2),
    ContractionAxiom("C3", "if ⊭ μ then ψ − μ ⊭ μ", _check_c3),
    ContractionAxiom("C4", "(ψ − μ) ∧ μ implies ψ (recovery)", _check_c4),
    ContractionAxiom("C5", "result depends only on Mod(μ)", _check_c5),
)


def check_contraction_axiom(
    operator: TheoryChangeOperator,
    axiom: ContractionAxiom,
    knowledge_bases: Sequence[ModelSet],
    inputs: Sequence[ModelSet],
) -> Optional[Counterexample]:
    """Check one contraction postulate over a scenario grid."""
    for psi in knowledge_bases:
        for mu in inputs:
            counterexample = axiom.check_instance(operator, (psi, mu))
            if counterexample is not None:
                return counterexample
    return None
