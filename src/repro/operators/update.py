"""Baseline update operators: Winslett's PMA and Forbus's operator.

Updates (KM postulates U1–U8, Appendix A of the paper) treat the new
information as *more recent*: every model of the old knowledge base is
moved independently to its closest μ-models, and the results are unioned
(axiom U8 is exactly this per-model independence).

* Winslett's *possible models approach* compares symmetric differences by
  set inclusion (a genuinely partial order per model).
* Forbus's operator compares them by cardinality (Dalal's metric applied
  per model).

Theorem 3.2 uses the fact that Winslett's operator satisfies (U2) and (U8)
to conclude it cannot be a model-fitting operator; the E7 matrix verifies
this mechanically.
"""

from __future__ import annotations

from typing import Optional

from repro.distances.base import HammingDistance, InterpretationDistance
from repro.logic.semantics import ModelSet
from repro.operators.base import OperatorFamily, TheoryChangeOperator

__all__ = ["WinslettUpdate", "ForbusUpdate"]


class WinslettUpdate(TheoryChangeOperator):
    """Winslett's PMA update, simplified to the propositional case.

    ``Mod(ψ ⋄ μ) = ⋃_{J ∈ Mod(ψ)} Min(Mod(μ), ≤J)`` where ``I ≤J I'`` iff
    ``I Δ J ⊆ I' Δ J``.
    """

    name = "winslett"
    family = OperatorFamily.UPDATE

    def apply_models(self, psi: ModelSet, mu: ModelSet) -> ModelSet:
        self._check_vocabularies(psi, mu)
        chosen: set[int] = set()
        mu_masks = mu.masks
        for psi_mask in psi.masks:
            diffs = [(mu_mask ^ psi_mask, mu_mask) for mu_mask in mu_masks]
            for diff, mu_mask in diffs:
                dominated = False
                for other_diff, _ in diffs:
                    if other_diff != diff and (other_diff & diff) == other_diff:
                        dominated = True
                        break
                if not dominated:
                    chosen.add(mu_mask)
        return ModelSet(mu.vocabulary, chosen)


class ForbusUpdate(TheoryChangeOperator):
    """Forbus's update: per-model cardinality-minimal change.

    ``Mod(ψ ⋄ μ) = ⋃_{J ∈ Mod(ψ)} argmin_{I ∈ Mod(μ)} dist(I, J)``.
    """

    name = "forbus"
    family = OperatorFamily.UPDATE

    def __init__(self, distance: Optional[InterpretationDistance] = None):
        self._distance = distance if distance is not None else HammingDistance()

    def apply_models(self, psi: ModelSet, mu: ModelSet) -> ModelSet:
        self._check_vocabularies(psi, mu)
        vocabulary = mu.vocabulary
        chosen: set[int] = set()
        mu_masks = mu.masks
        for psi_mask in psi.masks:
            best: Optional[float] = None
            closest: list[int] = []
            for mu_mask in mu_masks:
                d = self._distance.between_masks(mu_mask, psi_mask, vocabulary)
                if best is None or d < best:
                    best = d
                    closest = [mu_mask]
                elif d == best:
                    closest.append(mu_mask)
            chosen.update(closest)
        return ModelSet(vocabulary, chosen)
