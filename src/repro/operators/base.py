"""Common protocol for theory-change operators.

Every operator in the library — revision, update, model-fitting, or
arbitration — implements one semantic core:

    ``apply_models(Mod(ψ), Mod(μ)) -> Mod(result)``

i.e. a function on model sets.  Because the core never sees formula syntax,
the irrelevance-of-syntax axioms (R4/U4/A4) hold by construction for all
built-in operators; the postulate harness still checks them through the
formula-level wrapper so that user-defined, syntax-sensitive operators are
audited honestly.

The formula-level :meth:`TheoryChangeOperator.apply` enumerates models over
an explicit vocabulary 𝒯 (defaulting to the union of the two formulas'
atoms), applies the core, and returns the paper's canonical
``form(I₁,…,Iₖ)`` formula of the result.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from enum import Enum
from typing import Optional

from repro.errors import VocabularyError
from repro.logic.enumeration import EnumerationEngine, form_formula, models
from repro.logic.interpretation import Vocabulary
from repro.logic.semantics import ModelSet
from repro.logic.syntax import Formula
from repro.orders.preorder import TotalPreorder

__all__ = ["OperatorFamily", "TheoryChangeOperator", "AssignmentOperator"]


class OperatorFamily(Enum):
    """The family an operator *claims* to belong to.

    The claim is metadata, not a certificate: experiment E7 audits every
    operator against every axiom set and reports the matrix, which is how
    the odist operator's A8 defect surfaces.
    """

    REVISION = "revision"
    UPDATE = "update"
    MODEL_FITTING = "model-fitting"
    ARBITRATION = "arbitration"
    OTHER = "other"


class TheoryChangeOperator(ABC):
    """Base class for binary theory-change operators ``ψ * μ``."""

    #: Short identifier used in reports and benchmark tables.
    name: str = "operator"

    #: The family the operator is documented to belong to.
    family: OperatorFamily = OperatorFamily.OTHER

    @abstractmethod
    def apply_models(self, psi: ModelSet, mu: ModelSet) -> ModelSet:
        """The semantic core: model set of ``ψ * μ`` from the model sets of
        ψ and μ (over the same vocabulary)."""

    def _check_vocabularies(self, psi: ModelSet, mu: ModelSet) -> None:
        if psi.vocabulary != mu.vocabulary:
            raise VocabularyError(
                f"{self.name}: ψ and μ are over different vocabularies"
            )

    def apply(
        self,
        psi: Formula,
        mu: Formula,
        vocabulary: Optional[Vocabulary] = None,
        engine: Optional[EnumerationEngine] = None,
        impl: str = "auto",
    ) -> Formula:
        """Formula-level application: enumerate, change, re-express.

        The result is the canonical DNF ``form(...)`` of the output model
        set.  The vocabulary defaults to the union of atoms of ψ and μ;
        pass 𝒯 explicitly when the intended universe is larger (extra atoms
        change distances and therefore outcomes).

        ``impl`` selects the backend: ``"dense"`` enumerates all ``2^|T|``
        interpretations; ``"symbolic"`` runs on BDD level sets and returns
        a path-DNF formula instead of the canonical ``form(...)``
        (logically equivalent, different syntax); ``"auto"`` (default)
        picks symbolic once the vocabulary reaches
        :func:`repro.symbolic.symbolic_threshold` and the operator supports
        it, keeping small instances bit-identical to the historical output.
        """
        # The session core owns the dispatch rule; every layer (this
        # method, the postulate harness, the CLI, the serving layer)
        # resolves through the same definition.
        from repro.session.dispatch import resolve_backend

        if vocabulary is None:
            vocabulary = Vocabulary.from_formulas(psi, mu)
        backend = resolve_backend(self, vocabulary, impl, error=VocabularyError)
        if backend == "symbolic":
            from repro.symbolic import apply_symbolic

            # Forced symbolic: apply_symbolic raises for unsupported
            # operators; auto only resolves here when supported.
            return apply_symbolic(self, psi, mu, vocabulary)
        psi_models = models(psi, vocabulary, engine)
        mu_models = models(mu, vocabulary, engine)
        result = self.apply_models(psi_models, mu_models)
        return form_formula(result) if not result.is_empty else form_formula(
            ModelSet.empty(vocabulary)
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} ({self.family.value})>"


class AssignmentOperator(TheoryChangeOperator):
    """An operator induced by an assignment of total pre-orders:
    ``Mod(ψ * μ) = Min(Mod(μ), ≤ψ)``.

    This is the uniform shape of Katsuno–Mendelzon revision (faithful
    assignments) and of the paper's model-fitting (loyal assignments,
    Theorem 3.1).  The unsatisfiable-ψ case is family-dependent:
    model-fitting follows axiom A2 (the result is unsatisfiable), while
    AGM/KM revision follows R3 (any satisfiable μ must yield a satisfiable
    result, so an inconsistent base simply accepts μ).  Choose with
    ``unsat_base`` = ``"empty"`` (A2) or ``"accept-new"`` (R3).
    """

    def __init__(
        self,
        assignment,
        name: str,
        family: OperatorFamily,
        unsat_base: str = "empty",
    ):
        if unsat_base not in ("empty", "accept-new"):
            raise ValueError(f"unknown unsat_base policy {unsat_base!r}")
        self._assignment = assignment
        self._unsat_base = unsat_base
        self.name = name
        self.family = family

    @property
    def assignment(self):
        """The underlying ψ ↦ ≤ψ assignment."""
        return self._assignment

    @property
    def unsat_base(self) -> str:
        """The unsatisfiable-ψ policy: ``"empty"`` (axiom A2) or
        ``"accept-new"`` (R3).  The audit engine's batched evaluator
        replicates this branch, so it is part of the public contract."""
        return self._unsat_base

    def order_for(self, psi: ModelSet) -> TotalPreorder:
        """Expose ``≤ψ`` (used by Theorem 3.1 round-trip tests)."""
        return self._assignment.order_for(psi)

    def cache_info(self):
        """Statistics of the assignment's pre-order cache, or ``None`` when
        the assignment does not expose one."""
        probe = getattr(self._assignment, "cache_info", None)
        return probe() if probe is not None else None

    def apply_models(self, psi: ModelSet, mu: ModelSet) -> ModelSet:
        self._check_vocabularies(psi, mu)
        if psi.is_empty:
            if self._unsat_base == "empty":
                # Axiom A2: nothing can be fitted to an unsatisfiable base.
                return ModelSet.empty(psi.vocabulary)
            # R3: an inconsistent base accepts the new information whole.
            return mu
        order = self._assignment.order_for(psi)
        return order.minimal(mu)
