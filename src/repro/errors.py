"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the common cases (parse errors, vocabulary mismatches,
and semantic violations of the paper's definitions).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ParseError(ReproError):
    """A formula string could not be parsed.

    Attributes
    ----------
    text:
        The input string that failed to parse.
    position:
        Zero-based character offset at which the error was detected.
    """

    def __init__(self, message: str, text: str = "", position: int = -1):
        super().__init__(message)
        self.text = text
        self.position = position

    def __str__(self) -> str:
        base = super().__str__()
        if self.position >= 0:
            marker = " " * self.position + "^"
            return f"{base}\n  {self.text}\n  {marker}"
        return base


class VocabularyError(ReproError):
    """An operation mixed interpretations or formulas over incompatible
    vocabularies, or referenced an atom missing from the vocabulary."""


class WeightError(ReproError):
    """A weighted knowledge base was given a negative or non-numeric weight.

    Section 4 of the paper defines weighted knowledge bases as functions from
    interpretations to *non-negative* reals; this error enforces that domain.
    """


class OperatorError(ReproError):
    """A theory-change operator was applied outside its defined domain
    (for example, updating with an unsatisfiable input where the operator's
    definition requires satisfiability)."""


class PostulateError(ReproError):
    """The postulate-checking harness was configured inconsistently
    (unknown axiom name, empty scenario space, and so on)."""
