"""Pre-orders over interpretation space and the assignment machinery.

Faithful assignments underlie KM revision; loyal assignments (the paper's
Section 3 device) underlie model-fitting and arbitration.  Both are keyed
by model sets so that syntax irrelevance holds by construction, and both
come with mechanical condition checkers used by the test suite and the E5
experiment.
"""

from repro.orders.cache import AssignmentCache, CacheInfo, DEFAULT_CACHE_SIZE
from repro.orders.faithful import (
    FaithfulAssignment,
    FaithfulnessViolation,
    check_faithful,
    dalal_assignment,
)
from repro.orders.loyal import (
    LoyalAssignment,
    LoyaltyViolation,
    check_loyal,
    check_loyal_exhaustive,
    leximax_distance_assignment,
    max_distance_assignment,
    priority_distance_assignment,
    sum_distance_assignment,
)
from repro.orders.preorder import (
    LazyTotalPreorder,
    PartialPreorder,
    TotalPreorder,
    minimal_by_leq,
)
from repro.orders.spheres import SphereSystem
from repro.orders.symbolic import (
    SymbolicPreorder,
    max_distance_preorder,
    min_distance_preorder,
)

__all__ = [
    "TotalPreorder",
    "LazyTotalPreorder",
    "SymbolicPreorder",
    "min_distance_preorder",
    "max_distance_preorder",
    "AssignmentCache",
    "CacheInfo",
    "DEFAULT_CACHE_SIZE",
    "PartialPreorder",
    "minimal_by_leq",
    "SphereSystem",
    "FaithfulAssignment",
    "FaithfulnessViolation",
    "check_faithful",
    "dalal_assignment",
    "LoyalAssignment",
    "LoyaltyViolation",
    "check_loyal",
    "check_loyal_exhaustive",
    "max_distance_assignment",
    "sum_distance_assignment",
    "leximax_distance_assignment",
    "priority_distance_assignment",
]
