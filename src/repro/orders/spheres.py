"""Grove's systems of spheres — the AGM-side view of faithful orders.

Grove (1988) showed AGM revision is exactly "take the smallest sphere of
plausibility that intersects the new information".  Over a finite
propositional space a system of spheres is a nested chain

    ``S₁ ⊆ S₂ ⊆ … ⊆ Sₖ = ℳ``

and is interchangeable with a total pre-order (the spheres are the
cumulative unions of the order's levels).  The library provides the
translation both ways, Grove's revision construction, and checks — tying
together the three classical presentations of the same operator that this
repository implements: faithful assignment (KM), sphere system (Grove),
and iterated dilation (Dalal's algorithm), all proven equal in the tests.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import VocabularyError
from repro.logic.interpretation import Vocabulary
from repro.logic.semantics import ModelSet
from repro.orders.preorder import TotalPreorder

__all__ = ["SphereSystem"]


class SphereSystem:
    """A nested chain of model sets over one vocabulary, outermost = ℳ.

    >>> v = Vocabulary(["a", "b"])
    >>> spheres = SphereSystem(v, [ModelSet(v, [0]), ModelSet.universe(v)])
    >>> spheres.innermost.masks
    (0,)
    """

    __slots__ = ("_vocabulary", "_spheres")

    def __init__(self, vocabulary: Vocabulary, spheres: Sequence[ModelSet]):
        sphere_list = list(spheres)
        if not sphere_list:
            raise VocabularyError("a sphere system needs at least one sphere")
        previous: ModelSet | None = None
        for sphere in sphere_list:
            if sphere.vocabulary != vocabulary:
                raise VocabularyError("sphere vocabulary mismatch")
            if previous is not None and not previous.issubset(sphere):
                raise VocabularyError("spheres must be nested (⊆-increasing)")
            previous = sphere
        if not sphere_list[-1].is_universe:
            raise VocabularyError("the outermost sphere must be all of ℳ")
        # Drop duplicate consecutive spheres for a canonical chain.
        canonical: list[ModelSet] = []
        for sphere in sphere_list:
            if not canonical or canonical[-1] != sphere:
                canonical.append(sphere)
        self._vocabulary = vocabulary
        self._spheres = tuple(canonical)

    # -- accessors ---------------------------------------------------------------

    @property
    def vocabulary(self) -> Vocabulary:
        """The interpretation space."""
        return self._vocabulary

    @property
    def spheres(self) -> tuple[ModelSet, ...]:
        """The canonical (strictly increasing) chain."""
        return self._spheres

    @property
    def innermost(self) -> ModelSet:
        """The most plausible worlds (Mod(ψ) for a faithful system)."""
        return self._spheres[0]

    def __len__(self) -> int:
        return len(self._spheres)

    # -- translations --------------------------------------------------------------

    @classmethod
    def from_preorder(cls, order: TotalPreorder) -> "SphereSystem":
        """Spheres = cumulative unions of the pre-order's levels."""
        cumulative: list[ModelSet] = []
        running = ModelSet.empty(order.vocabulary)
        for level in order.levels():
            running = running.union(level)
            cumulative.append(running)
        return cls(order.vocabulary, cumulative)

    def to_preorder(self) -> TotalPreorder:
        """Rank every interpretation by the first sphere containing it."""

        def key(mask: int) -> int:
            for rank, sphere in enumerate(self._spheres):
                if mask in sphere:
                    return rank
            raise AssertionError("outermost sphere must cover every mask")

        return TotalPreorder.from_key(self._vocabulary, key)

    # -- Grove's revision -------------------------------------------------------------

    def smallest_intersecting(self, mu: ModelSet) -> ModelSet:
        """The smallest sphere meeting ``Mod(μ)`` (ℳ itself if μ is
        unsatisfiable, in which case the intersection is empty anyway)."""
        for sphere in self._spheres:
            if not sphere.intersection(mu).is_empty:
                return sphere
        return self._spheres[-1]

    def revise(self, mu: ModelSet) -> ModelSet:
        """Grove's construction: ``Mod(ψ ∘ μ) = c(μ) ∩ Mod(μ)`` where
        ``c(μ)`` is the smallest sphere intersecting μ."""
        if mu.vocabulary != self._vocabulary:
            raise VocabularyError("sphere system and μ vocabularies differ")
        return self.smallest_intersecting(mu).intersection(mu)

    def __repr__(self) -> str:
        sizes = ", ".join(str(len(sphere)) for sphere in self._spheres)
        return f"SphereSystem(sizes=[{sizes}])"
