"""A bounded, statistics-exposing cache for assignment pre-orders.

Faithful, loyal, and weighted-loyal assignments all memoize the pre-order
``≤ψ`` per knowledge base — syntax irrelevance makes the model set a
perfect cache key.  The original ad-hoc ``dict`` caches, however, grew
without bound over a long shell or benchmark session.  This module gives
every assignment one shared implementation: an LRU-bounded mapping with
``functools.lru_cache``-style statistics, surfaced through
``cache_info()`` on the assignments, the operators built from them, and
the E9 bench harness.

Caches are thread-safe: lookups, insertions, and evictions run under a
per-cache lock, while builders run *outside* it (two threads missing the
same key may both build — builders are pure, so last-write-wins is
harmless — but the LRU bound and the counters stay exact).

A cache constructed with a ``name`` additionally surfaces its traffic
through the observability registry when one is active
(:mod:`repro.obs`): counters ``cache.<name>.hits`` / ``.misses`` /
``.evictions``.  ``cache_info()`` is unchanged and always available —
the registry is a second, aggregatable view, not a replacement.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable, NamedTuple, Optional, TypeVar

from repro import obs

__all__ = ["AssignmentCache", "CacheInfo", "DEFAULT_CACHE_SIZE"]

#: Default bound on memoized pre-orders per assignment.  Pre-orders are
#: lazy, so an entry costs only its computed keys; 256 knowledge bases is
#: generous for interactive sessions while keeping worst-case memory flat.
DEFAULT_CACHE_SIZE = 256


V = TypeVar("V")


class CacheInfo(NamedTuple):
    """A snapshot of cache statistics (shape follows ``functools.lru_cache``,
    plus an eviction counter)."""

    hits: int
    misses: int
    evictions: int
    maxsize: Optional[int]
    currsize: int


class AssignmentCache:
    """A bounded LRU mapping from hashable keys to built values.

    ``maxsize=None`` disables the bound (the pre-refactor behaviour, kept
    for callers that genuinely want unbounded memoization).

    >>> cache = AssignmentCache(maxsize=2)
    >>> cache.get_or_build("a", lambda key: key.upper())
    'A'
    >>> cache.get_or_build("a", lambda key: key.upper())
    'A'
    >>> cache.cache_info()
    CacheInfo(hits=1, misses=1, evictions=0, maxsize=2, currsize=1)
    """

    __slots__ = (
        "_data",
        "_maxsize",
        "_hits",
        "_misses",
        "_evictions",
        "_lock",
        "name",
    )

    def __init__(
        self,
        maxsize: Optional[int] = DEFAULT_CACHE_SIZE,
        name: Optional[str] = None,
    ):
        if maxsize is not None and maxsize <= 0:
            raise ValueError(f"cache maxsize must be positive or None, got {maxsize}")
        self._data: OrderedDict[Hashable, object] = OrderedDict()
        self._maxsize = maxsize
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._lock = threading.Lock()
        #: Observability name; ``cache.<name>.*`` counters when set.
        self.name = name

    def _publish(self, registry, hits: int = 0, misses: int = 0, evictions: int = 0):
        prefix = f"cache.{self.name}"
        if hits:
            registry.counter(f"{prefix}.hits").inc(hits)
        if misses:
            registry.counter(f"{prefix}.misses").inc(misses)
        if evictions:
            registry.counter(f"{prefix}.evictions").inc(evictions)

    def get_or_build(self, key: Hashable, builder: Callable[..., V]) -> V:
        """Return the cached value for ``key``, building (and caching) it
        via ``builder(key)`` on a miss.  Hits refresh LRU recency.

        The builder runs outside the cache lock, so concurrent misses on
        the same key may build twice; builders are pure, so either result
        is correct and the bound/counters stay exact.
        """
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self._misses += 1
            else:
                self._hits += 1
                self._data.move_to_end(key)
                registry = obs.active()
                if registry is not None and self.name is not None:
                    self._publish(registry, hits=1)
                return value  # type: ignore[return-value]
        value = builder(key)
        evicted = 0
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            if self._maxsize is not None:
                while len(self._data) > self._maxsize:
                    self._data.popitem(last=False)
                    self._evictions += 1
                    evicted += 1
        registry = obs.active()
        if registry is not None and self.name is not None:
            self._publish(registry, misses=1, evictions=evicted)
        return value  # type: ignore[return-value]

    def cache_info(self) -> CacheInfo:
        """Current hit/miss/eviction counters and occupancy."""
        with self._lock:
            return CacheInfo(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                maxsize=self._maxsize,
                currsize=len(self._data),
            )

    def clear(self) -> None:
        """Drop all entries and reset the statistics."""
        with self._lock:
            self._data.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: object) -> bool:
        return key in self._data

    def __repr__(self) -> str:
        return f"AssignmentCache({self.cache_info()!r})"
