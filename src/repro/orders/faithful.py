"""Faithful assignments (Katsuno–Mendelzon revision substrate).

A *faithful assignment* maps every knowledge base ψ to a total pre-order
``≤ψ`` such that (KM, quoted in Section 2 of the paper):

1. if ``I, J ∈ Mod(ψ)`` then ``I <ψ J`` does not hold;
2. if ``I ∈ Mod(ψ)`` and ``J ∉ Mod(ψ)`` then ``I <ψ J``;
3. ``ψ₁ ↔ ψ₂`` implies ``≤ψ₁ = ≤ψ₂``.

Revision operators satisfying the AGM/KM postulates are exactly those of
the form ``Mod(ψ ∘ μ) = Min(Mod(μ), ≤ψ)`` for a faithful assignment; the
library uses this to implement Dalal's operator and to *check* faithfulness
of arbitrary assignments in the test suite.

Assignments here are keyed by the **model set** of ψ, which makes
condition 3 hold by construction.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.distances.base import HammingDistance, InterpretationDistance
from repro.logic.semantics import ModelSet
from repro.orders.cache import AssignmentCache, CacheInfo, DEFAULT_CACHE_SIZE
from repro.orders.loyal import DistanceOrderBuilder
from repro.orders.preorder import TotalPreorder

__all__ = [
    "FaithfulAssignment",
    "MinDistanceBuilder",
    "dalal_assignment",
    "check_faithful",
    "FaithfulnessViolation",
]


class FaithfulAssignment:
    """A function from knowledge bases (as model sets) to total pre-orders.

    Wraps a builder callable and memoizes per model set in a bounded LRU
    :class:`~repro.orders.cache.AssignmentCache`.  Because the key is the
    model set, logically equivalent knowledge bases receive the identical
    pre-order (KM condition 3).
    """

    def __init__(
        self,
        builder: Callable[[ModelSet], TotalPreorder],
        name: str = "faithful",
        cache_size: Optional[int] = DEFAULT_CACHE_SIZE,
    ):
        self._builder = builder
        self._cache_size = cache_size
        self._cache = AssignmentCache(maxsize=cache_size, name=f"assignment.{name}")
        self.name = name

    @property
    def builder(self) -> Callable[[ModelSet], TotalPreorder]:
        """The underlying ψ ↦ ≤ψ builder (the audit engine inspects its
        batching metadata: ``kind``, ``metric``)."""
        return self._builder

    def __getstate__(self):
        # As with loyal assignments: ship the recipe, not the memo cache.
        return {
            "builder": self._builder,
            "cache_size": self._cache_size,
            "name": self.name,
        }

    def __setstate__(self, state):
        self.__init__(state["builder"], state["name"], state["cache_size"])

    def order_for(self, knowledge_base: ModelSet) -> TotalPreorder:
        """The pre-order ``≤ψ`` for a knowledge base given by its models."""
        return self._cache.get_or_build(knowledge_base, self._builder)

    def cache_info(self) -> CacheInfo:
        """Hit/miss/eviction statistics of the memoized pre-orders."""
        return self._cache.cache_info()

    def cache_clear(self) -> None:
        """Drop all memoized pre-orders."""
        self._cache.clear()

    def __call__(self, knowledge_base: ModelSet) -> TotalPreorder:
        return self.order_for(knowledge_base)

    def __repr__(self) -> str:
        return f"FaithfulAssignment({self.name!r})"


class MinDistanceBuilder(DistanceOrderBuilder):
    """Dalal's key: distance to the nearest model of ψ."""

    kind = "min"
    empty_key: object = 0.0

    def _scalar_key(self, row):
        return lambda mask: min(row(mask))


def dalal_assignment(
    distance: Optional[InterpretationDistance] = None,
    vectorized: bool = True,
    cache_size: Optional[int] = DEFAULT_CACHE_SIZE,
) -> FaithfulAssignment:
    """Dalal's faithful assignment: rank by distance to the nearest model.

    ``I ≤ψ J  iff  dist(ψ, I) ≤ dist(ψ, J)`` with
    ``dist(ψ, I) = min_{J ∈ Mod(ψ)} dist(I, J)``.  Models of ψ get rank 0,
    so faithfulness conditions 1–2 hold whenever ψ is satisfiable.
    """
    metric = distance if distance is not None else HammingDistance()
    return FaithfulAssignment(
        MinDistanceBuilder(metric, vectorized), name="dalal", cache_size=cache_size
    )


class FaithfulnessViolation:
    """A witnessed failure of one of the KM faithfulness conditions."""

    def __init__(self, condition: int, detail: str):
        self.condition = condition
        self.detail = detail

    def __repr__(self) -> str:
        return f"FaithfulnessViolation(condition={self.condition}, {self.detail})"


def check_faithful(
    assignment: FaithfulAssignment, knowledge_base: ModelSet
) -> Optional[FaithfulnessViolation]:
    """Check KM conditions 1–2 for one knowledge base.

    Condition 3 holds by construction (assignments are keyed by model set).
    Returns the first violation found, or ``None``.
    """
    order = assignment.order_for(knowledge_base)
    inside = knowledge_base.masks
    outside = [
        mask
        for mask in range(knowledge_base.vocabulary.interpretation_count)
        if mask not in knowledge_base
    ]
    for left in inside:
        for right in inside:
            if order.lt_masks(left, right):
                return FaithfulnessViolation(
                    1, f"models {left} < {right} inside Mod(ψ)"
                )
    for left in inside:
        for right in outside:
            if not order.lt_masks(left, right):
                return FaithfulnessViolation(
                    2, f"model {left} not strictly below non-model {right}"
                )
    return None
