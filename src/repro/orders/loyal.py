"""Loyal assignments (Section 3 of the paper) and concrete instances.

A *loyal assignment* maps each knowledge base ψ to a pre-order ``≤ψ`` over
ℳ such that for all interpretations ``I, J`` and knowledge bases ψ₁, ψ₂:

1. ``ψ₁ ↔ ψ₂``  implies  ``≤ψ₁ = ≤ψ₂``;
2. ``I <ψ₁ J`` and ``I ≤ψ₂ J``  imply  ``I <ψ₁∨ψ₂ J``;
3. ``I ≤ψ₁ J`` and ``I ≤ψ₂ J``  imply  ``I ≤ψ₁∨ψ₂ J``.

Theorem 3.1 characterizes the model-fitting operators (axioms A1–A8) as
exactly ``Mod(ψ ▷ μ) = Min(Mod(μ), ≤ψ)`` for loyal assignments of *total*
pre-orders.

Concrete assignments provided here:

* :func:`max_distance_assignment` — the paper's ``odist`` (max Hamming
  distance to the models of ψ).  **Reproduction note:** the paper asserts
  this is "clearly" loyal, but mechanical checking (see
  :func:`check_loyal` and the E6/E7 experiments) exhibits violations of
  condition 2 — and correspondingly of axiom A8 — when a max-tie hides a
  strict sub-preference.  Minimal counterexample, vocabulary ``{a,b,c}``:
  ψ₁ = form(∅), ψ₂ = form({a,b,c}, {b,c}), I = ∅, J = {a}; then I <ψ₁ J
  (0 < 1) and I ≤ψ₂ J (3 = 3), but odist over ψ₁∨ψ₂ ties at 3.
* :func:`sum_distance_assignment` — total distance; fails condition 2 the
  same way (take Mod(ψ₁) ⊆ Mod(ψ₂): the union discards ψ₁'s strictness).
* :func:`leximax_distance_assignment` — GMax refinement of odist; closer,
  but still not loyal in general (the union merges *sets*, not multisets).
* :func:`priority_distance_assignment` — distances to the models of ψ read
  as a vector in a fixed global priority order and compared
  lexicographically.  This assignment **is** loyal (the first differing
  coordinate of the union vector is the first differing coordinate of one
  of the operands, and both operands weakly favor the same side), so by
  Theorem 3.1 it induces a genuine A1–A8 model-fitting operator.  The
  library ships it as the corrected existence witness for the theorem.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Iterable, Optional, Sequence

from repro.distances import kernels
from repro.distances.base import HammingDistance, InterpretationDistance
from repro.logic.interpretation import Vocabulary, iter_set_bits
from repro.logic.semantics import ModelSet
from repro.orders.cache import AssignmentCache, CacheInfo, DEFAULT_CACHE_SIZE
from repro.orders.preorder import TotalPreorder

__all__ = [
    "LoyalAssignment",
    "bitmask_priority",
    "max_distance_assignment",
    "sum_distance_assignment",
    "leximax_distance_assignment",
    "priority_distance_assignment",
    "LoyaltyViolation",
    "check_loyal",
    "check_loyal_exhaustive",
]


class LoyalAssignment:
    """A function from knowledge bases (as model sets) to total pre-orders.

    Keyed by model set, so loyalty condition 1 (syntax irrelevance) holds
    by construction.  Conditions 2–3 are properties of the builder and can
    be audited with :func:`check_loyal`.  Built orders are memoized in a
    bounded LRU :class:`~repro.orders.cache.AssignmentCache`.

    Assignments built from the module's builder classes pickle cleanly
    (the memo cache is dropped, not shipped), which is what lets the
    audit engine send operators to process-pool workers.
    """

    def __init__(
        self,
        builder: Callable[[ModelSet], TotalPreorder],
        name: str = "loyal",
        cache_size: Optional[int] = DEFAULT_CACHE_SIZE,
    ):
        self._builder = builder
        self._cache_size = cache_size
        self._cache = AssignmentCache(maxsize=cache_size, name=f"assignment.{name}")
        self.name = name

    @property
    def builder(self) -> Callable[[ModelSet], TotalPreorder]:
        """The underlying ψ ↦ ≤ψ builder (the audit engine inspects its
        batching metadata: ``kind``, ``metric``, ``rank``)."""
        return self._builder

    def __getstate__(self):
        # Built pre-orders stay home: a worker rebuilds what it needs, and
        # lazy pre-orders can hold large memoized key tables.
        return {
            "builder": self._builder,
            "cache_size": self._cache_size,
            "name": self.name,
        }

    def __setstate__(self, state):
        self.__init__(state["builder"], state["name"], state["cache_size"])

    def order_for(self, knowledge_base: ModelSet) -> TotalPreorder:
        """The pre-order ``≤ψ`` for a knowledge base given by its models."""
        return self._cache.get_or_build(knowledge_base, self._builder)

    def cache_info(self) -> CacheInfo:
        """Hit/miss/eviction statistics of the memoized pre-orders."""
        return self._cache.cache_info()

    def cache_clear(self) -> None:
        """Drop all memoized pre-orders."""
        self._cache.clear()

    def __call__(self, knowledge_base: ModelSet) -> TotalPreorder:
        return self.order_for(knowledge_base)

    def __repr__(self) -> str:
        return f"LoyalAssignment({self.name!r})"


def bitmask_priority(mask: int) -> int:
    """The default global priority on interpretations: bitmask order."""
    return mask


#: Row aggregators per order kind (the audit engine's batched evaluator
#: looks builders up here by their ``kind`` attribute and applies the same
#: aggregator to slices of a shared full-pairwise distance matrix).
KIND_AGGREGATORS: dict[str, Callable[[object], list]] = {
    "max": kernels.max_keys,
    "min": kernels.min_keys,
    "sum": kernels.sum_keys,
    "leximax": kernels.leximax_keys,
    "row": kernels.row_keys,
}


@dataclass(frozen=True)
class _ConstantKeys:
    """Batch key function of the all-equivalent order (unsatisfiable ψ;
    axiom A2 short-circuits before Min, so only the shape matters)."""

    key: object

    def __call__(self, masks: Sequence[int]) -> list:
        return [self.key] * len(masks)


@dataclass(frozen=True)
class KernelBatchKeys:
    """Batch key function: distance matrix over the requested masks only,
    aggregated per row with the kernel aggregator for ``kind``."""

    kb_masks: tuple[int, ...]
    vocabulary: Vocabulary
    metric: InterpretationDistance
    kind: str

    def __call__(self, masks: Sequence[int]) -> list:
        return KIND_AGGREGATORS[self.kind](
            kernels.distance_matrix(masks, self.kb_masks, self.vocabulary, self.metric)
        )


@dataclass(frozen=True)
class _ScalarRow:
    """Per-mask distance row to the knowledge base's models (the scalar
    reference path)."""

    kb_masks: tuple[int, ...]
    vocabulary: Vocabulary
    metric: InterpretationDistance

    def __call__(self, mask: int) -> list:
        return [
            self.metric.between_masks(mask, kb_mask, self.vocabulary)
            for kb_mask in self.kb_masks
        ]


class DistanceOrderBuilder:
    """A picklable ψ ↦ ≤ψ builder aggregating distances to Mod(ψ).

    ``kind`` names the row aggregation (see :data:`KIND_AGGREGATORS`) and
    doubles as the batching contract consumed by the audit engine:
    a builder of kind ``k`` ranks mask ``I`` by ``agg_k`` of the distance
    row from ``I`` to the knowledge base's models, listed in
    :meth:`ordered_models` order.
    """

    #: The aggregation kind; subclasses override.
    kind = "max"
    #: Key of the all-equivalent order used for the unsatisfiable ψ.
    empty_key: object = 0

    def __init__(self, metric: InterpretationDistance, vectorized: bool = True):
        self.metric = metric
        self.vectorized = vectorized

    def ordered_models(self, knowledge_base: ModelSet) -> tuple[int, ...]:
        """The distance-row columns, in the order the key reads them."""
        return knowledge_base.masks

    def _scalar_key(self, row: Callable[[int], list]) -> Callable[[int], object]:
        raise NotImplementedError

    def __call__(self, knowledge_base: ModelSet) -> TotalPreorder:
        vocabulary = knowledge_base.vocabulary
        if knowledge_base.is_empty:
            return TotalPreorder.lazy(vocabulary, _ConstantKeys(self.empty_key))
        columns = self.ordered_models(knowledge_base)
        if not self.vectorized:
            row = _ScalarRow(columns, vocabulary, self.metric)
            return TotalPreorder.from_key(vocabulary, self._scalar_key(row))
        return TotalPreorder.lazy(
            vocabulary,
            KernelBatchKeys(columns, vocabulary, self.metric, self.kind),
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(kind={self.kind!r}, metric={self.metric!r})"


class MaxDistanceBuilder(DistanceOrderBuilder):
    """The paper's ``odist`` key: maximum distance to any model of ψ."""

    kind = "max"

    def _scalar_key(self, row):
        return lambda mask: max(row(mask))


class SumDistanceBuilder(DistanceOrderBuilder):
    """Total-distance key (unit-weight ``wdist``)."""

    kind = "sum"

    def _scalar_key(self, row):
        return lambda mask: sum(row(mask))


class LeximaxDistanceBuilder(DistanceOrderBuilder):
    """GMax key: the distance multiset sorted descending."""

    kind = "leximax"
    empty_key: object = ()

    def _scalar_key(self, row):
        return lambda mask: tuple(sorted(row(mask), reverse=True))


class PriorityDistanceBuilder(DistanceOrderBuilder):
    """Priority-lexicographic key: the distance vector to Mod(ψ) read in a
    fixed global priority order."""

    kind = "row"
    empty_key: object = ()

    def __init__(
        self,
        metric: InterpretationDistance,
        rank: Callable[[int], int] = bitmask_priority,
        vectorized: bool = True,
    ):
        super().__init__(metric, vectorized)
        self.rank = rank

    def ordered_models(self, knowledge_base: ModelSet) -> tuple[int, ...]:
        return tuple(sorted(knowledge_base.masks, key=self.rank))

    def _scalar_key(self, row):
        return lambda mask: tuple(row(mask))


def max_distance_assignment(
    distance: Optional[InterpretationDistance] = None,
    vectorized: bool = True,
    cache_size: Optional[int] = DEFAULT_CACHE_SIZE,
) -> LoyalAssignment:
    """The paper's ``odist`` ordering: ``I ≤ψ J iff max-dist(ψ,I) ≤
    max-dist(ψ,J)``.  See the module docstring for its known loyalty
    defect.  ``vectorized=False`` selects the scalar reference path
    (eager, pure-Python) used by the equality tests and the E9 baseline."""
    metric = distance if distance is not None else HammingDistance()
    return LoyalAssignment(
        MaxDistanceBuilder(metric, vectorized), name="odist(max)", cache_size=cache_size
    )


def sum_distance_assignment(
    distance: Optional[InterpretationDistance] = None,
    vectorized: bool = True,
    cache_size: Optional[int] = DEFAULT_CACHE_SIZE,
) -> LoyalAssignment:
    """Total-distance ordering (unit-weight ``wdist`` read back onto
    regular knowledge bases)."""
    metric = distance if distance is not None else HammingDistance()
    return LoyalAssignment(
        SumDistanceBuilder(metric, vectorized), name="sumdist", cache_size=cache_size
    )


def leximax_distance_assignment(
    distance: Optional[InterpretationDistance] = None,
    vectorized: bool = True,
    cache_size: Optional[int] = DEFAULT_CACHE_SIZE,
) -> LoyalAssignment:
    """GMax ordering: distance multiset sorted descending, lexicographic."""
    metric = distance if distance is not None else HammingDistance()
    return LoyalAssignment(
        LeximaxDistanceBuilder(metric, vectorized), name="leximax", cache_size=cache_size
    )


def priority_distance_assignment(
    distance: Optional[InterpretationDistance] = None,
    priority: Optional[Callable[[int], int]] = None,
    vectorized: bool = True,
    cache_size: Optional[int] = DEFAULT_CACHE_SIZE,
) -> LoyalAssignment:
    """The corrected, provably loyal assignment.

    Fix a global priority order on interpretations (by default the bitmask
    order).  For a knowledge base ψ list its models ``m₁ < m₂ < …`` in
    priority order and read the candidate's distances as the vector
    ``(dist(I, m₁), dist(I, m₂), …)``; compare vectors lexicographically.

    Loyalty argument: the vector for ψ₁ ∨ ψ₂ interleaves the coordinates of
    the operand vectors (shared models appear once).  The first coordinate
    where two candidates differ under the union is also the first differing
    coordinate of whichever operand contains that model — and loyalty's
    premises say each operand's first difference (if any) favors the same
    candidate.  Hence conditions 2 and 3 hold; condition 1 holds because
    the construction only reads ``Mod(ψ)``.
    """
    metric = distance if distance is not None else HammingDistance()
    rank = priority if priority is not None else bitmask_priority
    return LoyalAssignment(
        PriorityDistanceBuilder(metric, rank, vectorized),
        name="priority-lex",
        cache_size=cache_size,
    )


@dataclass(frozen=True)
class LoyaltyViolation:
    """A witnessed failure of loyalty condition 2 or 3.

    Attributes name the knowledge bases (as model sets), the pair of
    interpretations, and which condition broke.
    """

    condition: int
    kb1: ModelSet
    kb2: ModelSet
    left_mask: int
    right_mask: int

    def describe(self) -> str:
        """Human-readable account of the violation."""
        vocabulary = self.kb1.vocabulary
        left = vocabulary.from_mask(self.left_mask)
        right = vocabulary.from_mask(self.right_mask)
        relation = "<" if self.condition == 2 else "≤"
        return (
            f"condition ({self.condition}) fails: I={left!r}, J={right!r}, "
            f"Mod(ψ₁)={self.kb1!r}, Mod(ψ₂)={self.kb2!r}: premises hold but "
            f"not I {relation} J under ψ₁∨ψ₂"
        )


def _violations_for_pair(
    assignment: LoyalAssignment, kb1: ModelSet, kb2: ModelSet
) -> Iterable[LoyaltyViolation]:
    order1 = assignment.order_for(kb1)
    order2 = assignment.order_for(kb2)
    union = assignment.order_for(kb1.union(kb2))
    total = kb1.vocabulary.interpretation_count
    for left in range(total):
        for right in range(total):
            if left == right:
                continue
            leq1 = order1.leq_masks(left, right)
            leq2 = order2.leq_masks(left, right)
            if not (leq1 and leq2):
                continue
            lt1 = order1.lt_masks(left, right)
            lt2 = order2.lt_masks(left, right)
            if (lt1 or lt2) and not union.lt_masks(left, right):
                yield LoyaltyViolation(2, kb1, kb2, left, right)
            elif not union.leq_masks(left, right):
                yield LoyaltyViolation(3, kb1, kb2, left, right)


def check_loyal(
    assignment: LoyalAssignment,
    knowledge_bases: Sequence[ModelSet],
) -> Optional[LoyaltyViolation]:
    """Check loyalty conditions 2–3 over all pairs from ``knowledge_bases``.

    Condition 1 holds by construction.  Returns the first violation found,
    or ``None`` if the assignment is loyal on this sample.
    """
    for kb1, kb2 in combinations(knowledge_bases, 2):
        for violation in _violations_for_pair(assignment, kb1, kb2):
            return violation
    for kb in knowledge_bases:
        # ψ₁ = ψ₂ is a legal instantiation of the conditions too.
        for violation in _violations_for_pair(assignment, kb, kb):
            return violation
    return None


def check_loyal_exhaustive(
    assignment: LoyalAssignment,
    vocabulary: Vocabulary,
    include_empty: bool = False,
) -> Optional[LoyaltyViolation]:
    """Check loyalty over *every* knowledge base of the vocabulary.

    Exponential in 2^|𝒯| — intended for |𝒯| ≤ 3 in tests.  ``include_empty``
    adds the unsatisfiable knowledge base to the sample (the paper's
    conditions quantify over knowledge bases generally; operators
    special-case unsatisfiability via axiom A2, so the default leaves it
    out).
    """
    subsets: list[ModelSet] = []
    total = vocabulary.interpretation_count
    for bits in range(1 << total):
        if bits == 0 and not include_empty:
            continue
        subsets.append(ModelSet(vocabulary, iter_set_bits(bits)))
    return check_loyal(assignment, subsets)
