"""Pre-orders over the interpretation space and the ``Min`` operation.

The paper's Section 2 defines a pre-order ``≤`` over ℳ, the strict part
``<``, and ``Min(S, ≤) = {I ∈ S : ¬∃ I' ∈ S, I' < I}``.  Two concrete
representations are provided:

* :class:`TotalPreorder` — a ranking: each interpretation gets a comparable
  key, ``I ≤ J`` iff ``key(I) ≤ key(J)``.  Every ranking is automatically
  reflexive, transitive, and total; conversely every total pre-order over a
  finite set arises this way, so nothing is lost.  ``Min`` is a single scan.
* :class:`LazyTotalPreorder` — the same ranking contract, but keys are
  computed on demand in *batches*: ``Min(Mod(μ), ≤ψ)`` touches only the
  masks in ``Mod(μ)`` instead of all ``2^|𝒯|`` interpretations.  Whole-
  universe views (``levels``, equality, hashing, ``repr``) materialize
  transparently and memoize.
* :class:`PartialPreorder` — an explicit ``leq`` predicate (used by the
  update operators, whose per-model orders compare symmetric-difference
  *sets* by inclusion and are genuinely partial).  ``Min`` is the quadratic
  pairwise definition, verbatim from the paper.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import VocabularyError
from repro.logic.interpretation import Interpretation, Vocabulary
from repro.logic.semantics import ModelSet

__all__ = [
    "TotalPreorder",
    "LazyTotalPreorder",
    "PartialPreorder",
    "minimal_by_leq",
]


class TotalPreorder:
    """A total pre-order over all interpretations of a vocabulary,
    represented by an order key per bitmask.

    Keys may be any mutually comparable values (ints, floats, equal-length
    tuples).  ``I ≤ J  iff  key[I] <= key[J]``.

    >>> v = Vocabulary(["a", "b"])
    >>> order = TotalPreorder.from_key(v, lambda mask: mask.bit_count())
    >>> order.leq_masks(0b00, 0b11)
    True
    >>> order.minimal(ModelSet.universe(v)).masks
    (0,)
    """

    __slots__ = ("_vocabulary", "_keys")

    def __init__(self, vocabulary: Vocabulary, keys: Sequence[object]):
        if len(keys) != vocabulary.interpretation_count:
            raise VocabularyError(
                f"need one key per interpretation "
                f"({vocabulary.interpretation_count}), got {len(keys)}"
            )
        self._vocabulary = vocabulary
        self._keys = tuple(keys)

    @classmethod
    def from_key(
        cls, vocabulary: Vocabulary, key: Callable[[int], object]
    ) -> "TotalPreorder":
        """Build (eagerly) from a key function on bitmasks."""
        return cls(
            vocabulary, [key(mask) for mask in range(vocabulary.interpretation_count)]
        )

    @staticmethod
    def lazy(
        vocabulary: Vocabulary,
        batch_keys: Callable[[Sequence[int]], Sequence[object]],
    ) -> "LazyTotalPreorder":
        """Build a lazily evaluated ranking from a *batch* key function.

        ``batch_keys(masks)`` must return one key per requested mask; it is
        called only for masks whose keys have not been computed yet, so
        ``minimal(Mod(μ))`` costs O(|Mod(μ)|) key evaluations instead of
        O(2^|𝒯|).
        """
        return LazyTotalPreorder(vocabulary, batch_keys)

    # -- accessors -------------------------------------------------------------

    @property
    def vocabulary(self) -> Vocabulary:
        """The interpretation space this pre-order ranks."""
        return self._vocabulary

    def key_of_mask(self, mask: int) -> object:
        """The order key of the interpretation with this bitmask."""
        return self._keys[mask]

    def keys_for_masks(self, masks: Sequence[int]) -> list[object]:
        """Order keys for a batch of bitmasks (the restricted evaluation
        entry point; lazy subclasses override it to compute on demand)."""
        return [self._keys[mask] for mask in masks]

    def _materialized_keys(self) -> tuple[object, ...]:
        """The full key vector, one entry per interpretation."""
        return self._keys  # type: ignore[return-value]

    def key_of(self, interpretation: Interpretation) -> object:
        """The order key of an interpretation."""
        self._check(interpretation.vocabulary)
        return self.key_of_mask(interpretation.mask)

    def _check(self, vocabulary: Vocabulary) -> None:
        if vocabulary != self._vocabulary:
            raise VocabularyError(
                "pre-order and interpretation use different vocabularies"
            )

    # -- comparisons ------------------------------------------------------------

    def leq_masks(self, left: int, right: int) -> bool:
        """``I ≤ J`` on bitmasks."""
        return self._keys[left] <= self._keys[right]  # type: ignore[operator]

    def lt_masks(self, left: int, right: int) -> bool:
        """``I < J`` (``I ≤ J`` and not ``J ≤ I``) on bitmasks."""
        return self._keys[left] < self._keys[right]  # type: ignore[operator]

    def equivalent_masks(self, left: int, right: int) -> bool:
        """``I ≤ J`` and ``J ≤ I`` on bitmasks."""
        return self._keys[left] == self._keys[right]

    def leq(self, left: Interpretation, right: Interpretation) -> bool:
        """``I ≤ J`` on interpretations."""
        self._check(left.vocabulary)
        self._check(right.vocabulary)
        return self.leq_masks(left.mask, right.mask)

    def lt(self, left: Interpretation, right: Interpretation) -> bool:
        """``I < J`` on interpretations."""
        self._check(left.vocabulary)
        self._check(right.vocabulary)
        return self.lt_masks(left.mask, right.mask)

    # -- Min ---------------------------------------------------------------------

    def minimal(self, candidates: ModelSet) -> ModelSet:
        """The paper's ``Min(S, ≤)`` for this pre-order.

        For a ranking this is simply the candidates achieving the smallest
        key; the result is empty iff ``candidates`` is empty.  Keys are
        requested only for the candidate masks, so a lazy pre-order never
        ranks interpretations outside ``Mod(μ)``.
        """
        self._check(candidates.vocabulary)
        if candidates.is_empty:
            return candidates
        masks = candidates.masks
        keys = self.keys_for_masks(masks)
        best: object = None
        chosen: list[int] = []
        for mask, key in zip(masks, keys):
            if best is None or key < best:  # type: ignore[operator]
                best = key
                chosen = [mask]
            elif key == best:
                chosen.append(mask)
        return ModelSet(self._vocabulary, chosen)

    def levels(self) -> list[ModelSet]:
        """Equivalence classes in increasing key order (the "rings" around
        the knowledge base)."""
        by_key: dict[object, list[int]] = {}
        for mask, key in enumerate(self._materialized_keys()):
            by_key.setdefault(key, []).append(mask)
        return [
            ModelSet(self._vocabulary, masks)
            for _, masks in sorted(by_key.items(), key=lambda item: item[0])  # type: ignore[arg-type]
        ]

    # -- value semantics -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        """Two pre-orders are equal iff they induce the same relation,
        i.e. their keys are order-isomorphic; we compare the induced
        comparison matrix via rank normalization."""
        if not isinstance(other, TotalPreorder):
            return NotImplemented
        if self._vocabulary != other._vocabulary:
            return False
        return self._ranks() == other._ranks()

    def _ranks(self) -> tuple[int, ...]:
        keys = self._materialized_keys()
        distinct = sorted(set(keys))  # type: ignore[type-var]
        position = {key: rank for rank, key in enumerate(distinct)}
        return tuple(position[key] for key in keys)

    def __hash__(self) -> int:
        return hash((self._vocabulary, self._ranks()))

    def __repr__(self) -> str:
        parts = []
        for level in self.levels():
            parts.append("{" + ", ".join(repr(i) for i in level) + "}")
        return "TotalPreorder(" + " < ".join(parts) + ")"


class LazyTotalPreorder(TotalPreorder):
    """A total pre-order whose keys are computed on demand, in batches.

    Built from ``batch_keys(masks) -> keys`` (typically a vectorized
    distance kernel over just the requested masks).  Computed keys are
    memoized, so repeated queries and eventual materialization never
    re-rank a mask.  All comparison, ``Min``, equality, and display
    behaviour is inherited — only key retrieval changes.
    """

    __slots__ = ("_batch", "_memo")

    def __init__(
        self,
        vocabulary: Vocabulary,
        batch_keys: Callable[[Sequence[int]], Sequence[object]],
    ):
        self._vocabulary = vocabulary
        self._keys = None  # materialized on first whole-universe view
        self._batch = batch_keys
        self._memo: dict[int, object] = {}

    def keys_for_masks(self, masks: Sequence[int]) -> list[object]:
        memo = self._memo
        missing = [mask for mask in masks if mask not in memo]
        if missing:
            computed = self._batch(missing)
            if len(computed) != len(missing):
                raise VocabularyError(
                    f"batch key function returned {len(computed)} keys "
                    f"for {len(missing)} masks"
                )
            for mask, key in zip(missing, computed):
                memo[mask] = key
        return [memo[mask] for mask in masks]

    def key_of_mask(self, mask: int) -> object:
        memo = self._memo
        if mask in memo:
            return memo[mask]
        return self.keys_for_masks((mask,))[0]

    @property
    def computed_count(self) -> int:
        """How many interpretation keys have been evaluated so far (a
        laziness observability hook for tests and benchmarks)."""
        return len(self._memo)

    def _materialized_keys(self) -> tuple[object, ...]:
        if self._keys is None:
            self._keys = tuple(
                self.keys_for_masks(range(self._vocabulary.interpretation_count))
            )
        return self._keys

    def leq_masks(self, left: int, right: int) -> bool:
        keys = self.keys_for_masks((left, right))
        return keys[0] <= keys[1]  # type: ignore[operator]

    def lt_masks(self, left: int, right: int) -> bool:
        keys = self.keys_for_masks((left, right))
        return keys[0] < keys[1]  # type: ignore[operator]

    def equivalent_masks(self, left: int, right: int) -> bool:
        keys = self.keys_for_masks((left, right))
        return keys[0] == keys[1]


def minimal_by_leq(
    candidates: ModelSet, leq: Callable[[int, int], bool]
) -> ModelSet:
    """``Min(S, ≤)`` for an arbitrary (possibly partial) ``leq`` predicate.

    Implements the paper's definition verbatim: keep ``I`` unless some
    ``I' ∈ S`` satisfies ``I' ≤ I`` and not ``I ≤ I'``.
    """
    masks = candidates.masks
    kept: list[int] = []
    for candidate in masks:
        dominated = False
        for other in masks:
            if other == candidate:
                continue
            if leq(other, candidate) and not leq(candidate, other):
                dominated = True
                break
        if not dominated:
            kept.append(candidate)
    return ModelSet(candidates.vocabulary, kept)


class PartialPreorder:
    """A (possibly partial) pre-order given by an explicit ``leq`` predicate
    on bitmasks.

    Reflexivity and transitivity are the caller's responsibility (the
    update operators' inclusion orders satisfy both); :meth:`check` verifies
    them exhaustively for small vocabularies when needed.
    """

    __slots__ = ("_vocabulary", "_leq")

    def __init__(
        self, vocabulary: Vocabulary, leq: Callable[[int, int], bool]
    ):
        self._vocabulary = vocabulary
        self._leq = leq

    @property
    def vocabulary(self) -> Vocabulary:
        """The interpretation space this pre-order relates."""
        return self._vocabulary

    def leq_masks(self, left: int, right: int) -> bool:
        """``I ≤ J`` on bitmasks."""
        return self._leq(left, right)

    def lt_masks(self, left: int, right: int) -> bool:
        """``I < J`` on bitmasks."""
        return self._leq(left, right) and not self._leq(right, left)

    def minimal(self, candidates: ModelSet) -> ModelSet:
        """The paper's ``Min(S, ≤)`` by pairwise comparison."""
        if candidates.vocabulary != self._vocabulary:
            raise VocabularyError(
                "pre-order and candidates use different vocabularies"
            )
        return minimal_by_leq(candidates, self._leq)

    def check(self) -> None:
        """Exhaustively verify reflexivity and transitivity.

        Quadratic/cubic in 2^|𝒯| — intended for tests over small
        vocabularies only.
        """
        total = self._vocabulary.interpretation_count
        for i in range(total):
            if not self._leq(i, i):
                raise VocabularyError(f"leq is not reflexive at mask {i}")
        for i in range(total):
            for j in range(total):
                if not self._leq(i, j):
                    continue
                for k in range(total):
                    if self._leq(j, k) and not self._leq(i, k):
                        raise VocabularyError(
                            f"leq is not transitive at masks {i}, {j}, {k}"
                        )
