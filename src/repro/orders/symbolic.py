"""Symbolic pre-orders: level sets as BDD nodes instead of dense ranks.

The dense :class:`~repro.orders.preorder.TotalPreorder` assigns every one
of the ``2^|T|`` interpretations an explicit rank, which is exactly the
wall the symbolic backend removes.  A :class:`SymbolicPreorder` never
ranks individual interpretations: it represents each *level set*
``{I : rank(I) ≤ k}`` as one BDD node and computes
``Min(Mod(μ), ≤ψ)`` by walking levels ``k = 0, 1, 2, …`` and intersecting
— the first satisfiable intersection is the answer (level sets are
nested, so everything in it sits at the minimal rank).

Two faithful/loyal order families are expressible this way over the
Hamming metric:

* ``kind="min"`` (Dalal's faithful order): ``rank(I) = min_{J∈ψ}
  dist(I, J)``.  Level ``k`` is the Hamming ball of radius ``k`` around
  ``Mod(ψ)`` — the ``k``-fold dilation.
* ``kind="max"`` (the paper's loyal odist order): ``rank(I) = max_{J∈ψ}
  dist(I, J)``.  Level ``k`` is an intersection of balls around every
  model of ψ, which would be exponential to build directly; instead use
  ``dist(I, J) ≥ k+1 ⇔ dist(I, ~J) ≤ |T|−k−1`` to get the complement
  image ``level_k = ¬ ball_{|T|−k−1}(flip_all(ψ))``.

Both constructions are lazy (balls extend on demand and are cached on
the shared manager), so ``minimal`` touches only the levels below the
answer's rank.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import ReproError
from repro.logic.bdd import FALSE, TRUE, BddManager

__all__ = [
    "SymbolicPreorder",
    "min_distance_preorder",
    "max_distance_preorder",
]


class SymbolicPreorder:
    """A total pre-order on interpretation space given by nested BDD
    level sets — the symbolic sibling of
    :class:`~repro.orders.preorder.TotalPreorder`.

    ``level_node(k)`` is the set of interpretations of rank ≤ ``k``;
    ``sphere_node(k)`` the shell of rank exactly ``k``; ``minimal(μ)``
    the rank-minimal members of ``μ`` — all as nodes on the shared
    manager, never as dense vectors.
    """

    __slots__ = ("_manager", "_base", "_kind", "_levels")

    def __init__(self, manager: BddManager, base: int, kind: str):
        if kind not in ("min", "max"):
            raise ReproError(
                f"symbolic pre-orders support kinds 'min' and 'max', got {kind!r}"
            )
        self._manager = manager
        self._base = base
        self._kind = kind
        self._levels: dict[int, int] = {}

    @property
    def manager(self) -> BddManager:
        return self._manager

    @property
    def base(self) -> int:
        """The knowledge base ``Mod(ψ)`` the order is loyal/faithful to."""
        return self._base

    @property
    def kind(self) -> str:
        return self._kind

    @property
    def max_rank(self) -> int:
        """Ranks range over ``0 … |T|`` (Hamming distances)."""
        return self._manager.vocabulary.size

    def level_node(self, rank: int) -> int:
        """``{I : rank(I) ≤ rank}`` as a node (cached per rank)."""
        if rank < 0:
            return FALSE
        rank = min(rank, self.max_rank)
        node = self._levels.get(rank)
        if node is None:
            manager = self._manager
            if self._kind == "min":
                node = manager.hamming_ball(self._base, rank)
            else:
                remainder = self.max_rank - rank - 1
                if remainder < 0:
                    node = TRUE
                else:
                    node = manager.apply_not(
                        manager.hamming_ball(
                            manager.flip_all(self._base), remainder
                        )
                    )
            self._levels[rank] = node
        return node

    def sphere_node(self, rank: int) -> int:
        """The shell ``{I : rank(I) = rank}`` (level minus its interior)."""
        return self._manager.apply_and(
            self.level_node(rank),
            self._manager.apply_not(self.level_node(rank - 1)),
        )

    def iter_levels(self) -> Iterator[tuple[int, int]]:
        """Lazy ``(rank, sphere_node)`` pairs for the non-empty shells, in
        increasing rank order."""
        for rank in range(self.max_rank + 1):
            sphere = self.sphere_node(rank)
            if sphere != FALSE:
                yield rank, sphere

    def rank_of(self, mask: int) -> Optional[int]:
        """The rank of one interpretation bitmask (``None`` when the order
        is degenerate and no level ever contains it)."""
        for rank in range(self.max_rank + 1):
            if self._manager.evaluate(self.level_node(rank), mask):
                return rank
        return None

    def minimal(self, candidates: int) -> int:
        """``Min(candidates, ≤)``: walk levels upward, intersect, stop at
        the first satisfiable intersection."""
        manager = self._manager
        if candidates == FALSE:
            return FALSE
        for rank in range(self.max_rank + 1):
            selected = manager.apply_and(candidates, self.level_node(rank))
            if selected != FALSE:
                return selected
        return FALSE

    def __repr__(self) -> str:
        return (
            f"SymbolicPreorder(kind={self._kind!r}, base=node#{self._base}, "
            f"atoms={self._manager.vocabulary.size})"
        )


def min_distance_preorder(manager: BddManager, base: int) -> SymbolicPreorder:
    """Dalal's faithful order ``rank(I) = min_{J∈Mod(ψ)} dist(I, J)``."""
    return SymbolicPreorder(manager, base, "min")


def max_distance_preorder(manager: BddManager, base: int) -> SymbolicPreorder:
    """The paper's loyal odist order ``rank(I) = max_{J∈Mod(ψ)} dist(I, J)``."""
    return SymbolicPreorder(manager, base, "max")
