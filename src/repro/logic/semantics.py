"""Model-theoretic semantics for propositional formulas.

Implements the paper's ``Mod(·)`` (Section 2) over an explicit, finite
vocabulary.  Two evaluation paths are provided:

* :func:`evaluate` — evaluate one formula under one interpretation.
* :func:`truth_table` — a numpy boolean vector of length ``2^|𝒯|`` whose
  ``m``-th entry is the value of the formula under the interpretation with
  bitmask ``m``.  This is the fast path used by the truth-table enumeration
  engine for vocabularies up to ~20 atoms.

:class:`ModelSet` is the library's canonical representation of ``Mod(φ)``:
an immutable set of bitmasks tagged with its vocabulary, supporting the
boolean algebra the paper relies on (``Mod(ψ ∨ φ) = Mod(ψ) ∪ Mod(φ)`` and
so on) plus conversion back to a formula via
:func:`repro.logic.enumeration.form_formula`.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.errors import VocabularyError
from repro.logic.interpretation import Interpretation, Vocabulary
from repro.logic.syntax import (
    And,
    Atom,
    Bottom,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    Xor,
)

__all__ = ["evaluate", "truth_table", "ModelSet"]

#: Largest vocabulary for which we allow materializing a full truth table
#: (2^22 bools = 4 MiB per formula node; beyond that use the DPLL engine).
MAX_TRUTH_TABLE_ATOMS = 22


def evaluate(formula: Formula, interpretation: Interpretation) -> bool:
    """Truth value of ``formula`` under ``interpretation``.

    Atoms outside the interpretation's vocabulary raise
    :class:`~repro.errors.VocabularyError` — the paper always works relative
    to a fixed 𝒯, so a missing atom indicates a caller bug rather than a
    "default false" situation.
    """
    if isinstance(formula, Atom):
        return interpretation.value(formula.name)
    if isinstance(formula, Top):
        return True
    if isinstance(formula, Bottom):
        return False
    if isinstance(formula, Not):
        return not evaluate(formula.child, interpretation)
    if isinstance(formula, And):
        return all(evaluate(op, interpretation) for op in formula.operands)
    if isinstance(formula, Or):
        return any(evaluate(op, interpretation) for op in formula.operands)
    if isinstance(formula, Implies):
        return (not evaluate(formula.lhs, interpretation)) or evaluate(
            formula.rhs, interpretation
        )
    if isinstance(formula, Iff):
        return evaluate(formula.lhs, interpretation) == evaluate(
            formula.rhs, interpretation
        )
    if isinstance(formula, Xor):
        return evaluate(formula.lhs, interpretation) != evaluate(
            formula.rhs, interpretation
        )
    raise TypeError(f"unknown formula node {type(formula).__name__}")


def truth_table(formula: Formula, vocabulary: Vocabulary) -> np.ndarray:
    """Boolean vector ``t`` with ``t[m] == evaluate(formula, I_m)`` where
    ``I_m`` is the interpretation with bitmask ``m``.

    Runs one vectorized pass over the syntax tree; each atom contributes a
    periodic bit pattern extracted from ``arange(2^n)``.
    """
    n = vocabulary.size
    if n > MAX_TRUTH_TABLE_ATOMS:
        raise VocabularyError(
            f"vocabulary of {n} atoms exceeds the truth-table limit of "
            f"{MAX_TRUTH_TABLE_ATOMS}; use the DPLL enumeration engine"
        )
    indices = np.arange(1 << n, dtype=np.uint32)

    def walk(node: Formula) -> np.ndarray:
        if isinstance(node, Atom):
            bit = vocabulary.index(node.name)
            return ((indices >> np.uint32(bit)) & np.uint32(1)).astype(bool)
        if isinstance(node, Top):
            return np.ones(1 << n, dtype=bool)
        if isinstance(node, Bottom):
            return np.zeros(1 << n, dtype=bool)
        if isinstance(node, Not):
            return ~walk(node.child)
        if isinstance(node, And):
            result = walk(node.operands[0])
            for operand in node.operands[1:]:
                result = result & walk(operand)
            return result
        if isinstance(node, Or):
            result = walk(node.operands[0])
            for operand in node.operands[1:]:
                result = result | walk(operand)
            return result
        if isinstance(node, Implies):
            return ~walk(node.lhs) | walk(node.rhs)
        if isinstance(node, Iff):
            return walk(node.lhs) == walk(node.rhs)
        if isinstance(node, Xor):
            return walk(node.lhs) != walk(node.rhs)
        raise TypeError(f"unknown formula node {type(node).__name__}")

    return walk(formula)


class ModelSet:
    """An immutable set of interpretations over a fixed vocabulary.

    This is the library's concrete ``Mod(φ)``.  Masks are stored sorted for
    deterministic iteration; membership tests use a frozenset.  The boolean
    algebra mirrors the paper's semantics of the connectives.

    >>> v = Vocabulary(["a", "b"])
    >>> ms = ModelSet(v, [0b01, 0b11])
    >>> len(ms)
    2
    >>> v.interpretation({"a"}) in ms
    True
    """

    __slots__ = ("_vocabulary", "_masks", "_mask_set")

    def __init__(self, vocabulary: Vocabulary, masks: Iterable[int]):
        mask_set = frozenset(masks)
        limit = vocabulary.interpretation_count
        for mask in mask_set:
            if mask < 0 or mask >= limit:
                raise VocabularyError(
                    f"mask {mask} out of range for vocabulary of size {vocabulary.size}"
                )
        self._vocabulary = vocabulary
        self._mask_set = mask_set
        self._masks: tuple[int, ...] = tuple(sorted(mask_set))

    # -- constructors ----------------------------------------------------------

    @classmethod
    def empty(cls, vocabulary: Vocabulary) -> "ModelSet":
        """``Mod(⊥)``: no models."""
        return cls(vocabulary, ())

    @classmethod
    def universe(cls, vocabulary: Vocabulary) -> "ModelSet":
        """``Mod(⊤)``: every interpretation (the paper's ℳ)."""
        return cls(vocabulary, range(vocabulary.interpretation_count))

    @classmethod
    def of_interpretations(
        cls, interpretations: Iterable[Interpretation]
    ) -> "ModelSet":
        """Model set containing exactly the given interpretations, which
        must all share one vocabulary."""
        interps = list(interpretations)
        if not interps:
            raise VocabularyError(
                "cannot infer a vocabulary from zero interpretations; "
                "use ModelSet.empty(vocabulary)"
            )
        vocabulary = interps[0].vocabulary
        for interp in interps[1:]:
            if interp.vocabulary != vocabulary:
                raise VocabularyError("interpretations span multiple vocabularies")
        return cls(vocabulary, (interp.mask for interp in interps))

    @classmethod
    def from_truth_table(
        cls, vocabulary: Vocabulary, table: np.ndarray
    ) -> "ModelSet":
        """Model set of the interpretations whose table entry is true."""
        if table.shape != (vocabulary.interpretation_count,):
            raise VocabularyError(
                f"truth table of shape {table.shape} does not match vocabulary "
                f"of size {vocabulary.size}"
            )
        return cls(vocabulary, np.flatnonzero(table).tolist())

    # -- accessors ---------------------------------------------------------------

    @property
    def vocabulary(self) -> Vocabulary:
        """The vocabulary all member interpretations range over."""
        return self._vocabulary

    @property
    def masks(self) -> tuple[int, ...]:
        """The member bitmasks, sorted ascending."""
        return self._masks

    @property
    def is_empty(self) -> bool:
        """True iff this is ``Mod(⊥)`` — i.e. the source formula is
        unsatisfiable."""
        return not self._masks

    @property
    def is_universe(self) -> bool:
        """True iff every interpretation is a model (a valid formula)."""
        return len(self._masks) == self._vocabulary.interpretation_count

    def __len__(self) -> int:
        return len(self._masks)

    def __iter__(self) -> Iterator[Interpretation]:
        for mask in self._masks:
            yield Interpretation(self._vocabulary, mask)

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Interpretation):
            return (
                item.vocabulary == self._vocabulary and item.mask in self._mask_set
            )
        if isinstance(item, int):
            return item in self._mask_set
        return False

    def interpretations(self) -> list[Interpretation]:
        """The members as a sorted list of interpretations."""
        return list(self)

    # -- boolean algebra -----------------------------------------------------------

    def _check_same_vocabulary(self, other: "ModelSet") -> None:
        if self._vocabulary != other._vocabulary:
            raise VocabularyError(
                "model sets are over different vocabularies: "
                f"{self._vocabulary!r} vs {other._vocabulary!r}"
            )

    def union(self, other: "ModelSet") -> "ModelSet":
        """``Mod(ψ) ∪ Mod(φ) = Mod(ψ ∨ φ)``."""
        self._check_same_vocabulary(other)
        return ModelSet(self._vocabulary, self._mask_set | other._mask_set)

    def intersection(self, other: "ModelSet") -> "ModelSet":
        """``Mod(ψ) ∩ Mod(φ) = Mod(ψ ∧ φ)``."""
        self._check_same_vocabulary(other)
        return ModelSet(self._vocabulary, self._mask_set & other._mask_set)

    def difference(self, other: "ModelSet") -> "ModelSet":
        """``Mod(ψ) \\ Mod(φ) = Mod(ψ ∧ ¬φ)``."""
        self._check_same_vocabulary(other)
        return ModelSet(self._vocabulary, self._mask_set - other._mask_set)

    def complement(self) -> "ModelSet":
        """``ℳ \\ Mod(φ) = Mod(¬φ)``."""
        return ModelSet(
            self._vocabulary,
            set(range(self._vocabulary.interpretation_count)) - self._mask_set,
        )

    __or__ = union
    __and__ = intersection
    __sub__ = difference

    def issubset(self, other: "ModelSet") -> bool:
        """Model-set inclusion — semantic implication of the sources."""
        self._check_same_vocabulary(other)
        return self._mask_set <= other._mask_set

    def __le__(self, other: "ModelSet") -> bool:
        return self.issubset(other)

    # -- value semantics --------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ModelSet):
            return NotImplemented
        return (
            self._vocabulary == other._vocabulary
            and self._mask_set == other._mask_set
        )

    def __hash__(self) -> int:
        return hash((self._vocabulary, self._mask_set))

    def __repr__(self) -> str:
        members = ", ".join(repr(interp) for interp in self)
        return f"ModelSet[{members}]"
