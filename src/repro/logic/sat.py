"""A from-scratch DPLL SAT solver.

The reproduction environment has no external SAT library, so the library
ships its own solver: classic DPLL with unit propagation, pure-literal
elimination, and a most-frequent-literal branching heuristic.  It is more
than adequate for the paper's laptop-scale workloads (the semantics of
arbitration only ever need model sets over modest vocabularies) while the
numpy truth-table engine covers the dense small-vocabulary case.

The solver is deterministic: given the same clause list it always explores
branches in the same order, so model enumeration yields a stable order.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator, Optional, Sequence

from repro.logic.cnf import Clause

__all__ = ["solve", "enumerate_assignments", "SatStats"]


class SatStats:
    """Mutable counters describing one solver run (for the bench harness)."""

    __slots__ = ("decisions", "propagations", "conflicts")

    def __init__(self) -> None:
        self.decisions = 0
        self.propagations = 0
        self.conflicts = 0

    def __repr__(self) -> str:
        return (
            f"SatStats(decisions={self.decisions}, "
            f"propagations={self.propagations}, conflicts={self.conflicts})"
        )


def _propagate(
    clauses: list[list[int]], assignment: dict[int, bool], stats: SatStats
) -> Optional[list[list[int]]]:
    """Simplify ``clauses`` under ``assignment`` with unit propagation.

    Returns the residual clause list, or ``None`` on conflict.  New forced
    literals are written into ``assignment``.
    """
    changed = True
    current = clauses
    while changed:
        changed = False
        residual: list[list[int]] = []
        for clause in current:
            satisfied = False
            unassigned: list[int] = []
            for literal in clause:
                variable = abs(literal)
                if variable in assignment:
                    if assignment[variable] == (literal > 0):
                        satisfied = True
                        break
                else:
                    unassigned.append(literal)
            if satisfied:
                continue
            if not unassigned:
                stats.conflicts += 1
                return None
            if len(unassigned) == 1:
                literal = unassigned[0]
                assignment[abs(literal)] = literal > 0
                stats.propagations += 1
                changed = True
            else:
                residual.append(unassigned)
        current = residual
    return current


def _pure_literals(clauses: list[list[int]]) -> list[int]:
    """Literals whose complement never occurs in the residual clauses."""
    polarity: dict[int, int] = {}
    for clause in clauses:
        for literal in clause:
            variable = abs(literal)
            sign = 1 if literal > 0 else -1
            previous = polarity.get(variable)
            if previous is None:
                polarity[variable] = sign
            elif previous != sign:
                polarity[variable] = 0
    return [
        variable * sign for variable, sign in polarity.items() if sign != 0
    ]


def _choose_literal(clauses: list[list[int]]) -> int:
    """Branching heuristic: the literal occurring most often, preferring
    short clauses (literals are weighted by 2^-|clause|)."""
    scores: Counter[int] = Counter()
    for clause in clauses:
        weight = 2.0 ** -len(clause)
        for literal in clause:
            scores[literal] += weight
    # Deterministic tie-break on (score, literal).
    best = max(scores.items(), key=lambda item: (item[1], -abs(item[0]), item[0]))
    return best[0]


def _search(
    clauses: list[list[int]],
    assignment: dict[int, bool],
    stats: SatStats,
    use_pure_literal: bool,
) -> Optional[dict[int, bool]]:
    residual = _propagate(clauses, assignment, stats)
    if residual is None:
        return None
    if use_pure_literal:
        pures = _pure_literals(residual)
        while pures:
            for literal in pures:
                assignment[abs(literal)] = literal > 0
            residual = _propagate(residual, assignment, stats)
            if residual is None:
                return None
            pures = _pure_literals(residual)
    if not residual:
        return assignment
    literal = _choose_literal(residual)
    stats.decisions += 1
    for value in (literal > 0, literal <= 0):
        trail = dict(assignment)
        trail[abs(literal)] = value
        result = _search(residual, trail, stats, use_pure_literal)
        if result is not None:
            return result
    return None


def solve(
    clauses: Sequence[Clause],
    num_variables: int,
    stats: Optional[SatStats] = None,
) -> Optional[dict[int, bool]]:
    """Find one satisfying assignment, or ``None`` if unsatisfiable.

    The returned assignment is *total* over ``1..num_variables`` (variables
    untouched by the search are assigned ``False``).
    """
    if stats is None:
        stats = SatStats()
    assignment = _search([list(c) for c in clauses], {}, stats, use_pure_literal=True)
    if assignment is None:
        return None
    for variable in range(1, num_variables + 1):
        assignment.setdefault(variable, False)
    return assignment


def enumerate_assignments(
    clauses: Sequence[Clause],
    num_variables: int,
    project_to: Optional[Sequence[int]] = None,
    stats: Optional[SatStats] = None,
) -> Iterator[dict[int, bool]]:
    """Yield every satisfying assignment, optionally projected.

    When ``project_to`` is given, assignments are projected onto those
    variables and each distinct projection is yielded once: after each model
    the projection is excluded with a blocking clause, so duplicates are
    impossible.  Without projection, total assignments over all variables
    are enumerated (pure-literal elimination is disabled in that case, since
    it is satisfiability-preserving but not model-preserving).

    .. warning:: ``project_to`` must be *projection exact* for the intended
       semantics — e.g. the original atoms of a Tseitin encoding, whose
       auxiliary variables are functionally determined (see
       :func:`repro.logic.cnf.tseitin`).
    """
    if stats is None:
        stats = SatStats()
    working: list[Clause] = [tuple(c) for c in clauses]
    projection = tuple(project_to) if project_to is not None else tuple(
        range(1, num_variables + 1)
    )
    while True:
        assignment = _search(
            [list(c) for c in working], {}, stats, use_pure_literal=False
        )
        if assignment is None:
            return
        for variable in range(1, num_variables + 1):
            assignment.setdefault(variable, False)
        projected = {variable: assignment[variable] for variable in projection}
        yield projected
        blocking = tuple(
            -variable if value else variable for variable, value in projected.items()
        )
        if not blocking:
            return
        working.append(blocking)
