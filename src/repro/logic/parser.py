"""Parser for a human-friendly propositional surface syntax.

Grammar (lowest to highest precedence; ``->`` and ``<->`` associate to the
right, ``&``/``|``/``^`` to the left and are flattened):

.. code-block:: text

    iff     := implies ( '<->' implies )*
    implies := or ( '->' implies )?
    or      := xor ( ('|' | 'or') xor )*
    xor     := and ( '^' and )*
    and     := unary ( ('&' | 'and') unary )*
    unary   := ('!' | '~' | 'not') unary | primary
    primary := '(' iff ')' | 'true' | 'false' | ATOM

Atom tokens are identifiers: a letter or underscore followed by letters,
digits, or underscores.  The keywords ``and``, ``or``, ``not``, ``true``,
``false`` are reserved (case-insensitive).

>>> from repro.logic.parser import parse
>>> str(parse("a & b -> !c"))
'a & b -> !c'
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ParseError
from repro.logic.syntax import (
    BOTTOM,
    TOP,
    Atom,
    Formula,
    Iff,
    Implies,
    Not,
    Xor,
    conjoin,
    disjoin,
)

__all__ = ["parse"]

_TOKEN_PATTERN = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<iff><->)
  | (?P<implies>->)
  | (?P<and>&&?)
  | (?P<or>\|\|?)
  | (?P<xor>\^)
  | (?P<not>[!~])
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "not", "true", "false"}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r}", text, position
            )
        kind = match.lastgroup or ""
        token_text = match.group()
        if kind == "name":
            lowered = token_text.lower()
            if lowered in _KEYWORDS:
                kind = lowered
        if kind != "ws":
            tokens.append(_Token(kind, token_text, position))
        position = match.end()
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self._text = text
        self._tokens = _tokenize(text)
        self._index = 0

    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind!r}, found {token.text or 'end of input'!r}",
                self._text,
                token.position,
            )
        return self._advance()

    def parse(self) -> Formula:
        formula = self._iff()
        token = self._peek()
        if token.kind != "eof":
            raise ParseError(
                f"unexpected trailing input {token.text!r}", self._text, token.position
            )
        return formula

    def _iff(self) -> Formula:
        left = self._implies()
        if self._peek().kind == "iff":
            self._advance()
            right = self._iff()
            return Iff(left, right)
        return left

    def _implies(self) -> Formula:
        left = self._or()
        if self._peek().kind == "implies":
            self._advance()
            right = self._implies()
            return Implies(left, right)
        return left

    def _or(self) -> Formula:
        parts = [self._xor()]
        while self._peek().kind == "or":
            self._advance()
            parts.append(self._xor())
        return disjoin(parts)

    def _xor(self) -> Formula:
        left = self._and()
        while self._peek().kind == "xor":
            self._advance()
            right = self._and()
            left = Xor(left, right)
        return left

    def _and(self) -> Formula:
        parts = [self._unary()]
        while self._peek().kind == "and":
            self._advance()
            parts.append(self._unary())
        return conjoin(parts)

    def _unary(self) -> Formula:
        token = self._peek()
        if token.kind == "not":
            self._advance()
            return Not(self._unary())
        return self._primary()

    def _primary(self) -> Formula:
        token = self._peek()
        if token.kind == "lparen":
            self._advance()
            inner = self._iff()
            self._expect("rparen")
            return inner
        if token.kind == "true":
            self._advance()
            return TOP
        if token.kind == "false":
            self._advance()
            return BOTTOM
        if token.kind == "name":
            self._advance()
            return Atom(token.text)
        raise ParseError(
            f"expected a formula, found {token.text or 'end of input'!r}",
            self._text,
            token.position,
        )


def parse(text: str) -> Formula:
    """Parse ``text`` into a :class:`~repro.logic.syntax.Formula`.

    Raises :class:`~repro.errors.ParseError` with the offending position on
    malformed input.
    """
    return _Parser(text).parse()
