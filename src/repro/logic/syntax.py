"""Propositional formula abstract syntax.

The paper (Section 2) builds formulas from a finite set of propositional
terms using negation, conjunction, and disjunction.  For convenience the
library also provides implication, biconditional, exclusive-or, and the
truth constants; all of them are definable from the paper's core connectives
and the semantics in :mod:`repro.logic.semantics` treats them natively.

Formulas are immutable, hashable trees.  ``And`` and ``Or`` are *n-ary*
(their operands are stored as a tuple) which keeps large conjunctions flat
and cheap to traverse.  Python operators are overloaded for readability::

    >>> from repro.logic.syntax import Atom
    >>> a, b = Atom("a"), Atom("b")
    >>> str(a & ~b)
    'a & !b'
    >>> str(a >> b)
    'a -> b'

Structural equality is syntactic: ``a & b != b & a`` as *objects* even though
they are logically equivalent.  Logical equivalence lives in
:func:`repro.logic.semantics.equivalent`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping

__all__ = [
    "Formula",
    "Atom",
    "Top",
    "Bottom",
    "TOP",
    "BOTTOM",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "Xor",
    "conjoin",
    "disjoin",
    "atoms_of",
    "subformulas",
    "substitute",
    "rename_atoms",
    "formula_size",
    "formula_depth",
]


class Formula:
    """Base class for all propositional formulas.

    Subclasses are frozen dataclasses; instances are immutable, hashable,
    and compare by structure.  Use ``&``, ``|``, ``~``, and ``>>`` to build
    larger formulas fluently.
    """

    __slots__ = ()

    # -- fluent construction -------------------------------------------------

    def __and__(self, other: "Formula") -> "And":
        if not isinstance(other, Formula):
            return NotImplemented
        return And.of(self, other)

    def __or__(self, other: "Formula") -> "Or":
        if not isinstance(other, Formula):
            return NotImplemented
        return Or.of(self, other)

    def __invert__(self) -> "Not":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Implies":
        if not isinstance(other, Formula):
            return NotImplemented
        return Implies(self, other)

    def iff(self, other: "Formula") -> "Iff":
        """Biconditional ``self <-> other``."""
        return Iff(self, other)

    def xor(self, other: "Formula") -> "Xor":
        """Exclusive disjunction ``self ^ other``."""
        return Xor(self, other)

    # -- introspection -------------------------------------------------------

    def children(self) -> tuple["Formula", ...]:
        """The immediate subformulas, in syntactic order."""
        raise NotImplementedError

    def atoms(self) -> frozenset[str]:
        """The set of atom names occurring in this formula."""
        return atoms_of(self)

    # -- printing ------------------------------------------------------------

    _PRECEDENCE = 0  # overridden by subclasses; larger binds tighter

    def _render(self, parent_precedence: int) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self._render(0)


@dataclass(frozen=True, slots=True)
class Atom(Formula):
    """A propositional term (variable).

    Atom names are arbitrary non-empty strings; the parser restricts them to
    identifier-like tokens but programmatic construction does not.
    """

    name: str

    _PRECEDENCE = 100

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(f"atom name must be a non-empty string, got {self.name!r}")

    def children(self) -> tuple[Formula, ...]:
        return ()

    def _render(self, parent_precedence: int) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Atom({self.name!r})"


@dataclass(frozen=True, slots=True)
class Top(Formula):
    """The formula that is true in every interpretation (⊤)."""

    _PRECEDENCE = 100

    def children(self) -> tuple[Formula, ...]:
        return ()

    def _render(self, parent_precedence: int) -> str:
        return "true"

    def __repr__(self) -> str:
        return "Top()"


@dataclass(frozen=True, slots=True)
class Bottom(Formula):
    """The formula that is false in every interpretation (⊥)."""

    _PRECEDENCE = 100

    def children(self) -> tuple[Formula, ...]:
        return ()

    def _render(self, parent_precedence: int) -> str:
        return "false"

    def __repr__(self) -> str:
        return "Bottom()"


#: Canonical instance of :class:`Top`.
TOP = Top()

#: Canonical instance of :class:`Bottom`.
BOTTOM = Bottom()


@dataclass(frozen=True, slots=True)
class Not(Formula):
    """Negation ``!child``."""

    child: Formula

    _PRECEDENCE = 90

    def children(self) -> tuple[Formula, ...]:
        return (self.child,)

    def _render(self, parent_precedence: int) -> str:
        inner = self.child._render(self._PRECEDENCE)
        return f"!{inner}"


def _flatten(cls: type, operands: Iterable[Formula]) -> tuple[Formula, ...]:
    """Flatten nested applications of the same n-ary connective."""
    flat: list[Formula] = []
    for operand in operands:
        if not isinstance(operand, Formula):
            raise TypeError(f"expected Formula, got {type(operand).__name__}")
        if isinstance(operand, cls):
            flat.extend(operand.operands)  # type: ignore[attr-defined]
        else:
            flat.append(operand)
    return tuple(flat)


@dataclass(frozen=True, slots=True)
class And(Formula):
    """N-ary conjunction.  ``And.of`` flattens nested conjunctions."""

    operands: tuple[Formula, ...]

    _PRECEDENCE = 60

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise ValueError("And requires at least two operands; use conjoin() for fewer")

    @classmethod
    def of(cls, *operands: Formula) -> "And":
        """Build a flattened conjunction from two or more operands."""
        return cls(_flatten(cls, operands))

    def children(self) -> tuple[Formula, ...]:
        return self.operands

    def _render(self, parent_precedence: int) -> str:
        body = " & ".join(op._render(self._PRECEDENCE) for op in self.operands)
        if parent_precedence > self._PRECEDENCE:
            return f"({body})"
        return body


@dataclass(frozen=True, slots=True)
class Or(Formula):
    """N-ary disjunction.  ``Or.of`` flattens nested disjunctions."""

    operands: tuple[Formula, ...]

    _PRECEDENCE = 50

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise ValueError("Or requires at least two operands; use disjoin() for fewer")

    @classmethod
    def of(cls, *operands: Formula) -> "Or":
        """Build a flattened disjunction from two or more operands."""
        return cls(_flatten(cls, operands))

    def children(self) -> tuple[Formula, ...]:
        return self.operands

    def _render(self, parent_precedence: int) -> str:
        body = " | ".join(op._render(self._PRECEDENCE) for op in self.operands)
        if parent_precedence > self._PRECEDENCE:
            return f"({body})"
        return body


@dataclass(frozen=True, slots=True)
class Implies(Formula):
    """Material implication ``lhs -> rhs`` (right-associative in the parser)."""

    lhs: Formula
    rhs: Formula

    _PRECEDENCE = 30

    def children(self) -> tuple[Formula, ...]:
        return (self.lhs, self.rhs)

    def _render(self, parent_precedence: int) -> str:
        # Right-associative: the left operand needs strictly tighter binding.
        body = (
            f"{self.lhs._render(self._PRECEDENCE + 1)} -> "
            f"{self.rhs._render(self._PRECEDENCE)}"
        )
        if parent_precedence > self._PRECEDENCE:
            return f"({body})"
        return body


@dataclass(frozen=True, slots=True)
class Iff(Formula):
    """Biconditional ``lhs <-> rhs``."""

    lhs: Formula
    rhs: Formula

    _PRECEDENCE = 20

    def children(self) -> tuple[Formula, ...]:
        return (self.lhs, self.rhs)

    def _render(self, parent_precedence: int) -> str:
        body = (
            f"{self.lhs._render(self._PRECEDENCE + 1)} <-> "
            f"{self.rhs._render(self._PRECEDENCE)}"
        )
        if parent_precedence > self._PRECEDENCE:
            return f"({body})"
        return body


@dataclass(frozen=True, slots=True)
class Xor(Formula):
    """Exclusive disjunction ``lhs ^ rhs``.

    Binds tighter than ``|`` but looser than ``&``, matching the parser.
    """

    lhs: Formula
    rhs: Formula

    _PRECEDENCE = 55

    def children(self) -> tuple[Formula, ...]:
        return (self.lhs, self.rhs)

    def _render(self, parent_precedence: int) -> str:
        body = (
            f"{self.lhs._render(self._PRECEDENCE + 1)} ^ "
            f"{self.rhs._render(self._PRECEDENCE)}"
        )
        if parent_precedence > self._PRECEDENCE:
            return f"({body})"
        return body


# -- convenience constructors -------------------------------------------------


def conjoin(operands: Iterable[Formula]) -> Formula:
    """Conjunction of any number of formulas.

    Empty input yields ``TOP`` (the neutral element of conjunction) and a
    single operand is returned unchanged, matching the paper's convention of
    taking the conjunction of a set of formulas as the knowledge base.
    """
    flat = _flatten(And, operands)
    if not flat:
        return TOP
    if len(flat) == 1:
        return flat[0]
    return And(flat)


def disjoin(operands: Iterable[Formula]) -> Formula:
    """Disjunction of any number of formulas; empty input yields ``BOTTOM``."""
    flat = _flatten(Or, operands)
    if not flat:
        return BOTTOM
    if len(flat) == 1:
        return flat[0]
    return Or(flat)


# -- traversal ----------------------------------------------------------------


def subformulas(formula: Formula) -> Iterator[Formula]:
    """Yield every subformula (including ``formula`` itself), pre-order."""
    stack = [formula]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children()))


def atoms_of(formula: Formula) -> frozenset[str]:
    """The set of atom names occurring in ``formula``."""
    return frozenset(
        node.name for node in subformulas(formula) if isinstance(node, Atom)
    )


def formula_size(formula: Formula) -> int:
    """Number of connective and atom nodes in the syntax tree."""
    return sum(1 for _ in subformulas(formula))


def formula_depth(formula: Formula) -> int:
    """Height of the syntax tree; atoms and constants have depth 1."""
    children = formula.children()
    if not children:
        return 1
    return 1 + max(formula_depth(child) for child in children)


def _rebuild(formula: Formula, new_children: tuple[Formula, ...]) -> Formula:
    """Reconstruct ``formula`` with replacement children."""
    if isinstance(formula, (Atom, Top, Bottom)):
        return formula
    if isinstance(formula, Not):
        return Not(new_children[0])
    if isinstance(formula, And):
        return conjoin(new_children)
    if isinstance(formula, Or):
        return disjoin(new_children)
    if isinstance(formula, Implies):
        return Implies(new_children[0], new_children[1])
    if isinstance(formula, Iff):
        return Iff(new_children[0], new_children[1])
    if isinstance(formula, Xor):
        return Xor(new_children[0], new_children[1])
    raise TypeError(f"unknown formula node {type(formula).__name__}")


def transform_bottom_up(
    formula: Formula, visit: Callable[[Formula], Formula]
) -> Formula:
    """Rebuild ``formula`` bottom-up, applying ``visit`` to every node.

    ``visit`` receives each node *after* its children have been transformed
    and returns the node to use in its place.  This is the workhorse behind
    substitution and the normal-form conversions.
    """
    children = formula.children()
    if children:
        new_children = tuple(transform_bottom_up(child, visit) for child in children)
        if new_children != children:
            formula = _rebuild(formula, new_children)
    return visit(formula)


def substitute(formula: Formula, mapping: Mapping[str, Formula]) -> Formula:
    """Replace atoms by formulas according to ``mapping``.

    Substitution is simultaneous: replacements are not re-substituted.

    >>> from repro.logic.syntax import Atom, substitute
    >>> str(substitute(Atom("a") & Atom("b"), {"a": ~Atom("b")}))
    '!b & b'
    """

    def visit(node: Formula) -> Formula:
        if isinstance(node, Atom) and node.name in mapping:
            return mapping[node.name]
        return node

    return transform_bottom_up(formula, visit)


def rename_atoms(formula: Formula, mapping: Mapping[str, str]) -> Formula:
    """Rename atoms; atoms not mentioned in ``mapping`` are kept."""
    return substitute(
        formula, {old: Atom(new) for old, new in mapping.items()}
    )
