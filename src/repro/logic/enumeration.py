"""Model enumeration engines and entailment utilities.

Two interchangeable engines compute ``Mod(φ)`` over a vocabulary:

* :class:`TruthTableEngine` — materializes the numpy truth table.  Exact
  and extremely fast for vocabularies up to ~20 atoms; this is the default
  for the paper's scale.
* :class:`DpllEngine` — Tseitin-encodes the formula and enumerates models
  with the from-scratch DPLL solver plus blocking clauses, projected onto
  the vocabulary atoms.  Scales to larger vocabularies when the model set
  is sparse.

The module also provides the paper's ``form(I₁, …, Iₖ)`` — the canonical
formula whose models are exactly a given set of interpretations (used in
the proof of Theorem 3.1 and heavily by the postulate harness) — and the
standard satisfiability / entailment / equivalence predicates built on the
engines.
"""

from __future__ import annotations

from typing import Iterable, Optional, Protocol

from repro.errors import VocabularyError
from repro.logic.cnf import tseitin
from repro.logic.interpretation import Interpretation, Vocabulary
from repro.logic.sat import enumerate_assignments, solve
from repro.logic.semantics import MAX_TRUTH_TABLE_ATOMS, ModelSet, truth_table
from repro.logic.syntax import (
    BOTTOM,
    TOP,
    Atom,
    Formula,
    Iff,
    Not,
    conjoin,
    disjoin,
)

__all__ = [
    "EnumerationEngine",
    "TruthTableEngine",
    "DpllEngine",
    "default_engine",
    "models",
    "is_satisfiable",
    "is_valid",
    "entails",
    "equivalent",
    "form_formula",
    "cube_formula",
]


class EnumerationEngine(Protocol):
    """Anything that can compute ``Mod(φ)`` over a vocabulary."""

    def models(self, formula: Formula, vocabulary: Vocabulary) -> ModelSet:
        """The set of models of ``formula`` over ``vocabulary``."""
        ...

    def is_satisfiable(self, formula: Formula, vocabulary: Vocabulary) -> bool:
        """Whether ``formula`` has at least one model."""
        ...


def _check_vocabulary_covers(formula: Formula, vocabulary: Vocabulary) -> None:
    missing = formula.atoms() - set(vocabulary.atoms)
    if missing:
        raise VocabularyError(
            f"formula mentions atoms outside the vocabulary: {sorted(missing)}"
        )


class TruthTableEngine:
    """Exact enumeration by materializing the full truth table (numpy)."""

    def models(self, formula: Formula, vocabulary: Vocabulary) -> ModelSet:
        _check_vocabulary_covers(formula, vocabulary)
        table = truth_table(formula, vocabulary)
        return ModelSet.from_truth_table(vocabulary, table)

    def is_satisfiable(self, formula: Formula, vocabulary: Vocabulary) -> bool:
        _check_vocabulary_covers(formula, vocabulary)
        return bool(truth_table(formula, vocabulary).any())


class DpllEngine:
    """Enumeration via Tseitin encoding + DPLL with blocking clauses."""

    def models(self, formula: Formula, vocabulary: Vocabulary) -> ModelSet:
        _check_vocabulary_covers(formula, vocabulary)
        problem = tseitin(formula, vocabulary)
        masks: list[int] = []
        for assignment in enumerate_assignments(
            problem.clauses,
            problem.num_variables,
            project_to=problem.atom_variables,
        ):
            mask = 0
            for i, variable in enumerate(problem.atom_variables):
                if assignment[variable]:
                    mask |= 1 << i
            masks.append(mask)
        return ModelSet(vocabulary, masks)

    def is_satisfiable(self, formula: Formula, vocabulary: Vocabulary) -> bool:
        _check_vocabulary_covers(formula, vocabulary)
        problem = tseitin(formula, vocabulary)
        return solve(problem.clauses, problem.num_variables) is not None


#: Module-level default engine instances (stateless, safe to share).
TRUTH_TABLE_ENGINE = TruthTableEngine()
DPLL_ENGINE = DpllEngine()


def default_engine(vocabulary: Vocabulary) -> EnumerationEngine:
    """Pick the engine appropriate for the vocabulary size."""
    if vocabulary.size <= MAX_TRUTH_TABLE_ATOMS:
        return TRUTH_TABLE_ENGINE
    return DPLL_ENGINE


def _resolve(
    formula: Formula, vocabulary: Optional[Vocabulary]
) -> Vocabulary:
    if vocabulary is not None:
        return vocabulary
    return Vocabulary.from_formulas(formula)


def models(
    formula: Formula,
    vocabulary: Optional[Vocabulary] = None,
    engine: Optional[EnumerationEngine] = None,
) -> ModelSet:
    """``Mod(formula)`` over ``vocabulary``.

    When ``vocabulary`` is omitted it defaults to the sorted atoms of the
    formula itself.  Note that theory-change semantics are sensitive to the
    vocabulary (an atom in 𝒯 that a formula does not mention still doubles
    its model count), so operator code always passes 𝒯 explicitly.
    """
    vocabulary = _resolve(formula, vocabulary)
    if engine is None:
        engine = default_engine(vocabulary)
    return engine.models(formula, vocabulary)


def is_satisfiable(
    formula: Formula,
    vocabulary: Optional[Vocabulary] = None,
    engine: Optional[EnumerationEngine] = None,
) -> bool:
    """Whether the formula has a model.  Vocabulary choice cannot affect
    satisfiability, only the model count."""
    vocabulary = _resolve(formula, vocabulary)
    if engine is None:
        engine = default_engine(vocabulary)
    return engine.is_satisfiable(formula, vocabulary)


def is_valid(
    formula: Formula,
    vocabulary: Optional[Vocabulary] = None,
    engine: Optional[EnumerationEngine] = None,
) -> bool:
    """Whether the formula holds in every interpretation."""
    return not is_satisfiable(Not(formula), vocabulary, engine)


def entails(
    premise: Formula,
    conclusion: Formula,
    vocabulary: Optional[Vocabulary] = None,
    engine: Optional[EnumerationEngine] = None,
) -> bool:
    """Whether every model of ``premise`` satisfies ``conclusion``."""
    if vocabulary is None:
        vocabulary = Vocabulary.from_formulas(premise, conclusion)
    return not is_satisfiable(conjoin([premise, Not(conclusion)]), vocabulary, engine)


def equivalent(
    left: Formula,
    right: Formula,
    vocabulary: Optional[Vocabulary] = None,
    engine: Optional[EnumerationEngine] = None,
) -> bool:
    """Whether the two formulas have the same models."""
    if vocabulary is None:
        vocabulary = Vocabulary.from_formulas(left, right)
    return is_valid(Iff(left, right), vocabulary, engine)


def cube_formula(interpretation: Interpretation) -> Formula:
    """The complete conjunction true exactly at ``interpretation``.

    Every vocabulary atom appears, positively or negatively, so the cube
    pins down a single interpretation — the building block of
    :func:`form_formula`.
    """
    literals: list[Formula] = []
    for name in interpretation.vocabulary.atoms:
        atom = Atom(name)
        literals.append(atom if interpretation.value(name) else Not(atom))
    return conjoin(literals)


def form_formula(model_set: ModelSet | Iterable[Interpretation]) -> Formula:
    """The paper's ``form(I₁, …, Iₖ)``: a formula with exactly the given
    models (over their shared vocabulary).

    An empty collection yields ``⊥`` and the full interpretation space
    yields ``⊤``.  The result is in DNF (a disjunction of complete cubes).
    """
    if isinstance(model_set, ModelSet):
        if model_set.is_empty:
            return BOTTOM
        if model_set.is_universe:
            return TOP
        return disjoin(cube_formula(interp) for interp in model_set)
    interps = list(model_set)
    if not interps:
        return BOTTOM
    return form_formula(ModelSet.of_interpretations(interps))
