"""Vocabularies and interpretations.

The paper fixes a finite set 𝒯 of propositional terms and identifies an
*interpretation* with a subset ``I ⊆ 𝒯`` — the atoms that are true.  We
represent 𝒯 as an ordered :class:`Vocabulary` and each interpretation as an
integer bitmask over it, which makes Dalal's distance between two
interpretations a single ``popcount`` of an XOR (see
:mod:`repro.distances.hamming`).

Interpretations are value objects: two interpretations are equal iff they
share the same vocabulary and the same set of true atoms.  A deterministic
total order (by bitmask) is provided so that model sets print and iterate
reproducibly.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterable, Iterator

from repro.errors import VocabularyError

__all__ = ["Vocabulary", "Interpretation", "iter_set_bits"]


def iter_set_bits(bits: int) -> Iterator[int]:
    """Positions of the set bits of ``bits``, in increasing order.

    The standard decoding of "a set of interpretations packed into one
    integer" (bit ``m`` set ⇔ mask ``m`` is a member).  Runs in
    O(popcount) rather than O(range), which matters when callers decode
    sparse subsets of large interpretation spaces.
    """
    remaining = bits
    while remaining:
        low = remaining & -remaining
        yield low.bit_length() - 1
        remaining ^= low


class Vocabulary:
    """An ordered, finite universe of atom names (the paper's 𝒯).

    The order is significant only for the bitmask encoding and for
    deterministic printing; the semantics of every operator depend only on
    the *set* of atoms.  Vocabularies are immutable and hashable.

    >>> v = Vocabulary(["s", "d", "q"])
    >>> v.size
    3
    >>> v.index("d")
    1
    """

    __slots__ = ("_atoms", "_index", "_hash")

    def __init__(self, atoms: Iterable[str]):
        atom_list = list(atoms)
        seen: set[str] = set()
        for name in atom_list:
            if not isinstance(name, str) or not name:
                raise VocabularyError(f"atom name must be a non-empty string: {name!r}")
            if name in seen:
                raise VocabularyError(f"duplicate atom in vocabulary: {name!r}")
            seen.add(name)
        self._atoms: tuple[str, ...] = tuple(atom_list)
        self._index: dict[str, int] = {name: i for i, name in enumerate(self._atoms)}
        self._hash = hash(self._atoms)

    @classmethod
    def from_formulas(cls, *formulas) -> "Vocabulary":
        """The vocabulary of all atoms occurring in the given formulas,
        in sorted order (so the result is independent of formula shape)."""
        names: set[str] = set()
        for formula in formulas:
            names |= formula.atoms()
        return cls(sorted(names))

    # -- basic accessors -----------------------------------------------------

    @property
    def atoms(self) -> tuple[str, ...]:
        """The atom names, in vocabulary order."""
        return self._atoms

    @property
    def size(self) -> int:
        """Number of atoms (|𝒯|)."""
        return len(self._atoms)

    @property
    def interpretation_count(self) -> int:
        """Number of interpretations over this vocabulary (2^|𝒯|)."""
        return 1 << len(self._atoms)

    def index(self, name: str) -> int:
        """Position of ``name`` in the vocabulary order."""
        try:
            return self._index[name]
        except KeyError:
            raise VocabularyError(f"atom {name!r} not in vocabulary {self._atoms}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __iter__(self) -> Iterator[str]:
        return iter(self._atoms)

    def __len__(self) -> int:
        return len(self._atoms)

    # -- encoding ------------------------------------------------------------

    def mask_of(self, true_atoms: Iterable[str]) -> int:
        """Bitmask with bit ``i`` set iff atom ``i`` is in ``true_atoms``."""
        mask = 0
        for name in true_atoms:
            mask |= 1 << self.index(name)
        return mask

    def atoms_of_mask(self, mask: int) -> frozenset[str]:
        """Inverse of :meth:`mask_of`."""
        if mask < 0 or mask >= self.interpretation_count:
            raise VocabularyError(
                f"mask {mask} out of range for vocabulary of size {self.size}"
            )
        return frozenset(
            name for i, name in enumerate(self._atoms) if mask & (1 << i)
        )

    def interpretation(self, true_atoms: Iterable[str]) -> "Interpretation":
        """The interpretation making exactly ``true_atoms`` true."""
        return Interpretation(self, self.mask_of(true_atoms))

    def from_mask(self, mask: int) -> "Interpretation":
        """The interpretation encoded by ``mask``."""
        if mask < 0 or mask >= self.interpretation_count:
            raise VocabularyError(
                f"mask {mask} out of range for vocabulary of size {self.size}"
            )
        return Interpretation(self, mask)

    def all_interpretations(self) -> Iterator["Interpretation"]:
        """All 2^|𝒯| interpretations in bitmask order (the paper's ℳ)."""
        for mask in range(self.interpretation_count):
            yield Interpretation(self, mask)

    # -- combination ---------------------------------------------------------

    def union(self, other: "Vocabulary") -> "Vocabulary":
        """Vocabulary over the union of atom sets, in sorted order."""
        if self == other:
            return self
        return Vocabulary(sorted(set(self._atoms) | set(other._atoms)))

    def extended(self, extra_atoms: Iterable[str]) -> "Vocabulary":
        """This vocabulary plus any new atoms from ``extra_atoms`` (appended
        in sorted order, keeping existing positions stable)."""
        new = sorted(set(extra_atoms) - set(self._atoms))
        if not new:
            return self
        return Vocabulary(self._atoms + tuple(new))

    # -- value semantics -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vocabulary):
            return NotImplemented
        return self._atoms == other._atoms

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Vocabulary({list(self._atoms)!r})"


@total_ordering
class Interpretation:
    """A truth assignment: the subset of vocabulary atoms that are true.

    Backed by an integer bitmask for speed; exposes set-like operations on
    atom names.  Ordered by bitmask value (deterministic, vocabulary-order
    dependent) so sorted model lists are reproducible.

    >>> v = Vocabulary(["s", "d", "q"])
    >>> i = v.interpretation({"s", "d"})
    >>> "s" in i, "q" in i
    (True, False)
    >>> sorted(i.true_atoms)
    ['d', 's']
    """

    __slots__ = ("_vocabulary", "_mask")

    def __init__(self, vocabulary: Vocabulary, mask: int):
        if mask < 0 or mask >= vocabulary.interpretation_count:
            raise VocabularyError(
                f"mask {mask} out of range for vocabulary of size {vocabulary.size}"
            )
        self._vocabulary = vocabulary
        self._mask = mask

    # -- accessors -----------------------------------------------------------

    @property
    def vocabulary(self) -> Vocabulary:
        """The vocabulary this interpretation assigns values over."""
        return self._vocabulary

    @property
    def mask(self) -> int:
        """The bitmask encoding (bit i == truth value of atom i)."""
        return self._mask

    @property
    def true_atoms(self) -> frozenset[str]:
        """The set of atoms assigned true (the paper's ``I`` itself)."""
        return self._vocabulary.atoms_of_mask(self._mask)

    @property
    def false_atoms(self) -> frozenset[str]:
        """The complement set of atoms assigned false."""
        full = (1 << self._vocabulary.size) - 1
        return self._vocabulary.atoms_of_mask(full ^ self._mask)

    def value(self, atom: str) -> bool:
        """Truth value of ``atom`` under this interpretation."""
        return bool(self._mask & (1 << self._vocabulary.index(atom)))

    def __contains__(self, atom: object) -> bool:
        if not isinstance(atom, str):
            return False
        if atom not in self._vocabulary:
            return False
        return self.value(atom)

    def __iter__(self) -> Iterator[str]:
        """Iterate over the true atoms in vocabulary order."""
        for i, name in enumerate(self._vocabulary.atoms):
            if self._mask & (1 << i):
                yield name

    def __len__(self) -> int:
        """Number of true atoms."""
        return self._mask.bit_count()

    # -- set algebra on atoms ------------------------------------------------

    def _check_same_vocabulary(self, other: "Interpretation") -> None:
        if self._vocabulary != other._vocabulary:
            raise VocabularyError(
                "interpretations are over different vocabularies: "
                f"{self._vocabulary!r} vs {other._vocabulary!r}"
            )

    def symmetric_difference(self, other: "Interpretation") -> frozenset[str]:
        """Atoms on which the two interpretations disagree:
        ``(I \\ J) ∪ (J \\ I)`` in the paper's notation."""
        self._check_same_vocabulary(other)
        return self._vocabulary.atoms_of_mask(self._mask ^ other._mask)

    def hamming_distance(self, other: "Interpretation") -> int:
        """Dalal's ``dist(I, J)``: the number of atoms the two
        interpretations disagree on."""
        self._check_same_vocabulary(other)
        return (self._mask ^ other._mask).bit_count()

    def flipped(self, atom: str) -> "Interpretation":
        """A copy with the truth value of ``atom`` toggled."""
        return Interpretation(
            self._vocabulary, self._mask ^ (1 << self._vocabulary.index(atom))
        )

    def restricted_to(self, vocabulary: Vocabulary) -> "Interpretation":
        """Project onto a (sub-)vocabulary; atoms absent from ``self``'s
        vocabulary are assigned false."""
        mask = 0
        for i, name in enumerate(vocabulary.atoms):
            if name in self._vocabulary and self.value(name):
                mask |= 1 << i
        return Interpretation(vocabulary, mask)

    # -- value semantics -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Interpretation):
            return NotImplemented
        return self._vocabulary == other._vocabulary and self._mask == other._mask

    def __lt__(self, other: "Interpretation") -> bool:
        if not isinstance(other, Interpretation):
            return NotImplemented
        self._check_same_vocabulary(other)
        return self._mask < other._mask

    def __hash__(self) -> int:
        return hash((self._vocabulary, self._mask))

    def __repr__(self) -> str:
        inside = ", ".join(self)
        return f"{{{inside}}}"


def sort_interpretations(
    interpretations: Iterable[Interpretation],
) -> list[Interpretation]:
    """Sort interpretations by bitmask for deterministic output."""
    return sorted(interpretations, key=lambda i: i.mask)
