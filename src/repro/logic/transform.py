"""Normal-form conversions and formula simplification.

Provides the classical pipeline used by the SAT engine:

* :func:`eliminate_sugar` — rewrite ``->``, ``<->``, ``^`` into the paper's
  core connectives (¬, ∧, ∨).
* :func:`to_nnf` — negation normal form (negations pushed onto atoms).
* :func:`to_cnf` — conjunctive normal form by distribution.  Exact (no new
  atoms) but worst-case exponential; used for small formulas and as a test
  oracle for the Tseitin encoding in :mod:`repro.logic.cnf`.
* :func:`to_dnf` — disjunctive normal form by distribution.
* :func:`simplify` — bottom-up constant folding, involution, idempotence,
  and complement elimination.  Equivalence-preserving and cheap; *not* a
  minimizer.
"""

from __future__ import annotations

from repro.logic.syntax import (
    BOTTOM,
    TOP,
    And,
    Atom,
    Bottom,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    Xor,
    conjoin,
    disjoin,
    transform_bottom_up,
)

__all__ = [
    "eliminate_sugar",
    "to_nnf",
    "to_cnf",
    "to_dnf",
    "simplify",
    "is_nnf",
    "is_cnf",
    "is_dnf",
]


def eliminate_sugar(formula: Formula) -> Formula:
    """Rewrite implication, biconditional, and xor into ¬/∧/∨."""

    def visit(node: Formula) -> Formula:
        if isinstance(node, Implies):
            return disjoin([Not(node.lhs), node.rhs])
        if isinstance(node, Iff):
            return disjoin(
                [
                    conjoin([node.lhs, node.rhs]),
                    conjoin([Not(node.lhs), Not(node.rhs)]),
                ]
            )
        if isinstance(node, Xor):
            return disjoin(
                [
                    conjoin([node.lhs, Not(node.rhs)]),
                    conjoin([Not(node.lhs), node.rhs]),
                ]
            )
        return node

    return transform_bottom_up(formula, visit)


def to_nnf(formula: Formula) -> Formula:
    """Negation normal form: sugar eliminated, negation only on atoms,
    constants pushed out of negations."""
    return _nnf(eliminate_sugar(formula), negate=False)


def _nnf(node: Formula, negate: bool) -> Formula:
    if isinstance(node, Atom):
        return Not(node) if negate else node
    if isinstance(node, Top):
        return BOTTOM if negate else TOP
    if isinstance(node, Bottom):
        return TOP if negate else BOTTOM
    if isinstance(node, Not):
        return _nnf(node.child, not negate)
    if isinstance(node, And):
        parts = [_nnf(op, negate) for op in node.operands]
        return disjoin(parts) if negate else conjoin(parts)
    if isinstance(node, Or):
        parts = [_nnf(op, negate) for op in node.operands]
        return conjoin(parts) if negate else disjoin(parts)
    raise TypeError(
        f"unexpected node {type(node).__name__} after sugar elimination"
    )


def _distribute_or_over_and(parts: list[Formula]) -> Formula:
    """Given NNF disjuncts, distribute ∨ over ∧ to produce a CNF formula."""
    # Separate conjunction operands; the cross product of one pick per
    # disjunct yields the CNF clauses.
    choice_lists: list[tuple[Formula, ...]] = []
    for part in parts:
        if isinstance(part, And):
            choice_lists.append(part.operands)
        else:
            choice_lists.append((part,))
    clauses: list[Formula] = []
    indices = [0] * len(choice_lists)
    while True:
        clause = disjoin(choice_lists[i][indices[i]] for i in range(len(choice_lists)))
        clauses.append(clause)
        # odometer increment
        for position in range(len(indices) - 1, -1, -1):
            indices[position] += 1
            if indices[position] < len(choice_lists[position]):
                break
            indices[position] = 0
        else:
            break
    return conjoin(clauses)


def to_cnf(formula: Formula) -> Formula:
    """Conjunctive normal form via NNF + distribution.

    Exact and vocabulary-preserving but worst-case exponential in size;
    use the Tseitin encoding (:func:`repro.logic.cnf.tseitin`) for large
    inputs where equisatisfiability suffices.
    """

    def visit(node: Formula) -> Formula:
        if isinstance(node, Or):
            return _distribute_or_over_and(list(node.operands))
        return node

    return simplify(transform_bottom_up(to_nnf(formula), visit))


def to_dnf(formula: Formula) -> Formula:
    """Disjunctive normal form via NNF + distribution (dual of CNF)."""

    def visit(node: Formula) -> Formula:
        if isinstance(node, And):
            choice_lists: list[tuple[Formula, ...]] = []
            for part in node.operands:
                if isinstance(part, Or):
                    choice_lists.append(part.operands)
                else:
                    choice_lists.append((part,))
            terms: list[Formula] = []
            indices = [0] * len(choice_lists)
            while True:
                term = conjoin(
                    choice_lists[i][indices[i]] for i in range(len(choice_lists))
                )
                terms.append(term)
                for position in range(len(indices) - 1, -1, -1):
                    indices[position] += 1
                    if indices[position] < len(choice_lists[position]):
                        break
                    indices[position] = 0
                else:
                    break
            return disjoin(terms)
        return node

    return simplify(transform_bottom_up(to_nnf(formula), visit))


def simplify(formula: Formula) -> Formula:
    """Equivalence-preserving structural simplification.

    Applies, bottom-up: double-negation elimination, constant folding
    (``φ ∧ ⊤ = φ`` etc.), idempotence (duplicate operands dropped), and
    complement detection (``φ ∧ ¬φ = ⊥``, ``φ ∨ ¬φ = ⊤``).
    """

    def visit(node: Formula) -> Formula:
        if isinstance(node, Not):
            child = node.child
            if isinstance(child, Not):
                return child.child
            if isinstance(child, Top):
                return BOTTOM
            if isinstance(child, Bottom):
                return TOP
            return node
        if isinstance(node, And):
            kept: list[Formula] = []
            seen: set[Formula] = set()
            for operand in node.operands:
                if isinstance(operand, Bottom):
                    return BOTTOM
                if isinstance(operand, Top) or operand in seen:
                    continue
                seen.add(operand)
                kept.append(operand)
            for operand in kept:
                complement = (
                    operand.child if isinstance(operand, Not) else Not(operand)
                )
                if complement in seen:
                    return BOTTOM
            return conjoin(kept)
        if isinstance(node, Or):
            kept = []
            seen = set()
            for operand in node.operands:
                if isinstance(operand, Top):
                    return TOP
                if isinstance(operand, Bottom) or operand in seen:
                    continue
                seen.add(operand)
                kept.append(operand)
            for operand in kept:
                complement = (
                    operand.child if isinstance(operand, Not) else Not(operand)
                )
                if complement in seen:
                    return TOP
            return disjoin(kept)
        return node

    return transform_bottom_up(formula, visit)


# -- normal-form recognizers ---------------------------------------------------


def _is_literal(node: Formula) -> bool:
    return isinstance(node, Atom) or (
        isinstance(node, Not) and isinstance(node.child, Atom)
    )


def is_nnf(formula: Formula) -> bool:
    """True iff negations apply only to atoms and there is no sugar."""
    if isinstance(formula, (Atom, Top, Bottom)):
        return True
    if isinstance(formula, Not):
        return isinstance(formula.child, Atom)
    if isinstance(formula, (And, Or)):
        return all(is_nnf(op) for op in formula.operands)
    return False


def _is_clause(node: Formula) -> bool:
    if _is_literal(node):
        return True
    return isinstance(node, Or) and all(_is_literal(op) for op in node.operands)


def _is_term(node: Formula) -> bool:
    if _is_literal(node):
        return True
    return isinstance(node, And) and all(_is_literal(op) for op in node.operands)


def is_cnf(formula: Formula) -> bool:
    """True iff the formula is a conjunction of clauses (or simpler)."""
    if isinstance(formula, (Top, Bottom)):
        return True
    if _is_clause(formula):
        return True
    return isinstance(formula, And) and all(
        _is_clause(op) for op in formula.operands
    )


def is_dnf(formula: Formula) -> bool:
    """True iff the formula is a disjunction of terms (or simpler)."""
    if isinstance(formula, (Top, Bottom)):
        return True
    if _is_term(formula):
        return True
    return isinstance(formula, Or) and all(_is_term(op) for op in formula.operands)
