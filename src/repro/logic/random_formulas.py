"""Seeded random workload generators.

The paper's evaluation artifacts are worked examples, but the Section 5
open problem asks about the comparative complexity of revision, update, and
arbitration.  The scaling benchmarks (experiment E9) need workloads; these
generators produce them deterministically from an explicit
:class:`random.Random` (or seed), so every benchmark run sees the same
instances.

All generators draw atoms from a supplied :class:`Vocabulary` so that the
theory-change semantics (which depend on 𝒯) stay explicit.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import ReproError
from repro.logic.interpretation import Vocabulary
from repro.logic.semantics import ModelSet
from repro.logic.syntax import (
    Atom,
    Formula,
    Iff,
    Implies,
    Not,
    Xor,
    conjoin,
    disjoin,
)

__all__ = [
    "make_rng",
    "random_vocabulary",
    "random_kcnf",
    "random_formula",
    "random_model_set",
    "random_satisfiable_formula",
]


def make_rng(seed: int | random.Random) -> random.Random:
    """Normalize a seed or existing generator into a ``random.Random``."""
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def random_vocabulary(size: int, prefix: str = "p") -> Vocabulary:
    """A vocabulary ``p0..p{size-1}`` (deterministic, no randomness)."""
    if size < 0:
        raise ReproError(f"vocabulary size must be non-negative, got {size}")
    return Vocabulary([f"{prefix}{i}" for i in range(size)])


def random_kcnf(
    vocabulary: Vocabulary,
    num_clauses: int,
    clause_size: int,
    rng: int | random.Random,
) -> Formula:
    """A random k-CNF formula: ``num_clauses`` clauses of ``clause_size``
    distinct literals over distinct atoms, uniformly sampled."""
    generator = make_rng(rng)
    if clause_size > vocabulary.size:
        raise ReproError(
            f"clause size {clause_size} exceeds vocabulary size {vocabulary.size}"
        )
    clauses: list[Formula] = []
    atoms = list(vocabulary.atoms)
    for _ in range(num_clauses):
        chosen = generator.sample(atoms, clause_size)
        literals: list[Formula] = []
        for name in chosen:
            atom = Atom(name)
            literals.append(atom if generator.random() < 0.5 else Not(atom))
        clauses.append(disjoin(literals))
    return conjoin(clauses)


def random_formula(
    vocabulary: Vocabulary,
    depth: int,
    rng: int | random.Random,
    connectives: Sequence[str] = ("and", "or", "not", "implies", "iff", "xor"),
) -> Formula:
    """A random formula tree of at most ``depth`` connective levels."""
    generator = make_rng(rng)
    atoms = list(vocabulary.atoms)
    if not atoms:
        raise ReproError("cannot generate formulas over an empty vocabulary")

    def build(level: int) -> Formula:
        if level <= 0 or generator.random() < 0.25:
            return Atom(generator.choice(atoms))
        kind = generator.choice(list(connectives))
        if kind == "not":
            return Not(build(level - 1))
        if kind == "and":
            return conjoin([build(level - 1), build(level - 1)])
        if kind == "or":
            return disjoin([build(level - 1), build(level - 1)])
        if kind == "implies":
            return Implies(build(level - 1), build(level - 1))
        if kind == "iff":
            return Iff(build(level - 1), build(level - 1))
        if kind == "xor":
            return Xor(build(level - 1), build(level - 1))
        raise ReproError(f"unknown connective kind {kind!r}")

    return build(depth)


def random_model_set(
    vocabulary: Vocabulary,
    count: int,
    rng: int | random.Random,
) -> ModelSet:
    """A uniformly random set of exactly ``count`` distinct interpretations."""
    generator = make_rng(rng)
    total = vocabulary.interpretation_count
    if count < 0 or count > total:
        raise ReproError(
            f"cannot choose {count} distinct interpretations out of {total}"
        )
    masks = generator.sample(range(total), count)
    return ModelSet(vocabulary, masks)


def random_satisfiable_formula(
    vocabulary: Vocabulary,
    depth: int,
    rng: int | random.Random,
    max_attempts: int = 64,
    engine=None,
) -> Formula:
    """A random formula guaranteed to be satisfiable.

    Retries :func:`random_formula` up to ``max_attempts`` times; the fall
    back after exhausting attempts is a single positive atom (always
    satisfiable), so the function is total.
    """
    from repro.logic.enumeration import is_satisfiable

    generator = make_rng(rng)
    for _ in range(max_attempts):
        candidate = random_formula(vocabulary, depth, generator)
        if is_satisfiable(candidate, vocabulary, engine):
            return candidate
    return Atom(vocabulary.atoms[0])
