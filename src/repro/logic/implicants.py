"""Prime implicants and two-level formula minimization (Quine–McCluskey).

The paper's canonical ``form(I₁, …, Iₖ)`` output is a disjunction of
complete cubes — exact but unreadable for more than a few models.  This
module computes the prime implicants of a model set and covers the set
with a (greedily) minimal subset of them, yielding compact, equivalent
formulas for operator results (used by
:meth:`repro.kb.knowledge_base.KnowledgeBase` pretty output and available
to any caller via :func:`minimal_formula`).

Implicants are represented as ``(fixed_mask, value_mask)`` pairs: the
implicant covers every interpretation ``m`` with
``m & fixed_mask == value_mask``.  A fixed bit set to 1 means the atom's
truth value is constrained; unset means "don't care".

Classic Quine–McCluskey is exponential in the worst case, which is fine at
the paper's scale (the vocabulary is small by construction: the truth-table
engine itself stops at 22 atoms).
"""

from __future__ import annotations

from itertools import groupby
from repro.logic.interpretation import Vocabulary
from repro.logic.semantics import ModelSet
from repro.logic.syntax import (
    BOTTOM,
    TOP,
    Atom,
    Formula,
    Not,
    conjoin,
    disjoin,
)

__all__ = ["Implicant", "prime_implicants", "minimal_cover", "minimal_formula"]

#: ``(fixed_mask, value_mask)`` — see module docstring.
Implicant = tuple[int, int]


def _covers(implicant: Implicant, mask: int) -> bool:
    fixed, value = implicant
    return (mask & fixed) == value


def _merge(left: Implicant, right: Implicant) -> Implicant | None:
    """Combine two implicants differing in exactly one fixed bit."""
    if left[0] != right[0]:
        return None
    difference = left[1] ^ right[1]
    if difference.bit_count() != 1:
        return None
    fixed = left[0] & ~difference
    return (fixed, left[1] & ~difference)


def prime_implicants(model_set: ModelSet) -> list[Implicant]:
    """All prime implicants of the model set, deterministically ordered.

    A prime implicant is a maximal cube lying entirely inside the model
    set.  The empty model set has none; the full space has the single
    empty-constraint implicant ``(0, 0)``.
    """
    if model_set.is_empty:
        return []
    full_fixed = (1 << model_set.vocabulary.size) - 1
    current: set[Implicant] = {(full_fixed, mask) for mask in model_set.masks}
    primes: set[Implicant] = set()
    while current:
        merged: set[Implicant] = set()
        used: set[Implicant] = set()
        # Group by fixed mask; only same-shape cubes can merge.
        ordered = sorted(current)
        for shape, group_iter in groupby(ordered, key=lambda imp: imp[0]):
            group = list(group_iter)
            for i, left in enumerate(group):
                for right in group[i + 1 :]:
                    combined = _merge(left, right)
                    if combined is not None:
                        merged.add(combined)
                        used.add(left)
                        used.add(right)
        primes.update(current - used)
        current = merged
    return sorted(primes)


def minimal_cover(model_set: ModelSet) -> list[Implicant]:
    """A small prime-implicant cover of the model set.

    Essential primes (sole coverers of some model) are taken first; the
    remainder is covered greedily by descending coverage.  Greedy set
    cover is within a log factor of optimal — exact minimality is NP-hard
    and unnecessary for display purposes.
    """
    primes = prime_implicants(model_set)
    if not primes:
        return []
    remaining = set(model_set.masks)
    coverage: dict[Implicant, set[int]] = {
        prime: {mask for mask in remaining if _covers(prime, mask)}
        for prime in primes
    }
    chosen: list[Implicant] = []

    # Essential primes.
    for mask in sorted(remaining):
        coverers = [prime for prime in primes if mask in coverage[prime]]
        if len(coverers) == 1 and coverers[0] not in chosen:
            chosen.append(coverers[0])
    for prime in chosen:
        remaining -= coverage[prime]

    # Greedy completion, deterministic tie-break on the implicant itself.
    while remaining:
        best = max(
            primes,
            key=lambda prime: (len(coverage[prime] & remaining), prime),
        )
        gain = coverage[best] & remaining
        if not gain:
            # Cannot happen for a correct prime set; guard against loops.
            raise AssertionError("prime implicants fail to cover the model set")
        chosen.append(best)
        remaining -= gain
    return chosen


def _implicant_formula(implicant: Implicant, vocabulary: Vocabulary) -> Formula:
    fixed, value = implicant
    literals: list[Formula] = []
    for index, name in enumerate(vocabulary.atoms):
        bit = 1 << index
        if fixed & bit:
            atom = Atom(name)
            literals.append(atom if value & bit else Not(atom))
    return conjoin(literals)


def minimal_formula(model_set: ModelSet) -> Formula:
    """A compact DNF formula with exactly the given models.

    Equivalent to the paper's ``form(...)`` but usually far smaller: the
    disjunction of a near-minimal prime-implicant cover.

    >>> from repro.logic.interpretation import Vocabulary
    >>> from repro.logic.semantics import ModelSet
    >>> v = Vocabulary(["a", "b"])
    >>> str(minimal_formula(ModelSet(v, [0b01, 0b11])))
    'a'
    """
    if model_set.is_empty:
        return BOTTOM
    if model_set.is_universe:
        return TOP
    cover = minimal_cover(model_set)
    return disjoin(
        _implicant_formula(implicant, model_set.vocabulary) for implicant in cover
    )
