"""Clause-level CNF representation, Tseitin encoding, and DIMACS I/O.

The SAT engine (:mod:`repro.logic.sat`) works on integer clauses in the
DIMACS convention: variables are ``1..n`` and a negative literal ``-v``
denotes the negation of variable ``v``.  :class:`CnfProblem` packages the
clause list together with the mapping from vocabulary atoms to solver
variables, including any auxiliary Tseitin variables.

Two encoders are provided:

* :func:`clauses_from_cnf_formula` — direct translation of a formula that is
  already in CNF (exact, no new variables).
* :func:`tseitin` — linear-size equisatisfiable encoding of an arbitrary
  formula.  Every model of the original formula extends to exactly one model
  of the encoding, so *projected* model enumeration over the original atoms
  is exact (this is what the DPLL enumeration engine relies on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TextIO

from repro.errors import ReproError
from repro.logic.interpretation import Vocabulary
from repro.logic.syntax import (
    And,
    Atom,
    Bottom,
    Formula,
    Not,
    Or,
    Top,
)
from repro.logic.transform import eliminate_sugar, is_cnf, to_nnf

__all__ = ["Clause", "CnfProblem", "clauses_from_cnf_formula", "tseitin"]

#: A clause is a tuple of non-zero DIMACS literals.
Clause = tuple[int, ...]


@dataclass(frozen=True)
class CnfProblem:
    """A CNF instance plus the atom-to-variable bookkeeping.

    Attributes
    ----------
    clauses:
        The clause list (DIMACS literals).
    num_variables:
        Total number of solver variables, auxiliary ones included.
    vocabulary:
        The propositional vocabulary of the source formula.
    atom_variables:
        ``atom_variables[i]`` is the solver variable for vocabulary atom
        ``i``; always ``i + 1`` for encoders in this module.
    """

    clauses: tuple[Clause, ...]
    num_variables: int
    vocabulary: Vocabulary
    atom_variables: tuple[int, ...]

    @property
    def num_clauses(self) -> int:
        """Number of clauses."""
        return len(self.clauses)

    def to_dimacs(self) -> str:
        """Serialize to DIMACS CNF text."""
        lines = [f"p cnf {self.num_variables} {self.num_clauses}"]
        for clause in self.clauses:
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines) + "\n"

    def write_dimacs(self, stream: TextIO) -> None:
        """Write DIMACS CNF text to a file-like object."""
        stream.write(self.to_dimacs())


def parse_dimacs(text: str) -> tuple[list[Clause], int]:
    """Parse DIMACS CNF text into ``(clauses, num_variables)``.

    Comment lines (``c ...``) are skipped; the problem line is validated.
    """
    clauses: list[Clause] = []
    num_variables = 0
    declared_clauses = -1
    current: list[int] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ReproError(f"malformed DIMACS problem line: {line!r}")
            num_variables = int(parts[2])
            declared_clauses = int(parts[3])
            continue
        for token in line.split():
            literal = int(token)
            if literal == 0:
                clauses.append(tuple(current))
                current = []
            else:
                if abs(literal) > num_variables:
                    num_variables = abs(literal)
                current.append(literal)
    if current:
        clauses.append(tuple(current))
    if declared_clauses >= 0 and declared_clauses != len(clauses):
        raise ReproError(
            f"DIMACS header declared {declared_clauses} clauses, found {len(clauses)}"
        )
    return clauses, num_variables


def _literal(node: Formula, vocabulary: Vocabulary) -> int:
    if isinstance(node, Atom):
        return vocabulary.index(node.name) + 1
    if isinstance(node, Not) and isinstance(node.child, Atom):
        return -(vocabulary.index(node.child.name) + 1)
    raise ReproError(f"not a literal: {node}")


def clauses_from_cnf_formula(
    formula: Formula, vocabulary: Vocabulary
) -> CnfProblem:
    """Translate a formula already in CNF into integer clauses.

    ``⊤`` maps to zero clauses; ``⊥`` maps to the empty clause (which is
    unsatisfiable by convention).
    """
    if not is_cnf(formula):
        raise ReproError(
            "formula is not in CNF; convert with to_cnf() or use tseitin()"
        )
    clauses: list[Clause] = []
    if isinstance(formula, Top):
        pass
    elif isinstance(formula, Bottom):
        clauses.append(())
    elif isinstance(formula, And):
        for part in formula.operands:
            clauses.append(_clause_literals(part, vocabulary))
    else:
        clauses.append(_clause_literals(formula, vocabulary))
    return CnfProblem(
        clauses=tuple(clauses),
        num_variables=vocabulary.size,
        vocabulary=vocabulary,
        atom_variables=tuple(range(1, vocabulary.size + 1)),
    )


def _clause_literals(node: Formula, vocabulary: Vocabulary) -> Clause:
    if isinstance(node, Or):
        return tuple(_literal(op, vocabulary) for op in node.operands)
    return (_literal(node, vocabulary),)


def tseitin(formula: Formula, vocabulary: Vocabulary) -> CnfProblem:
    """Tseitin encoding: linear-size CNF equisatisfiable with ``formula``.

    Vocabulary atoms keep variables ``1..n``; each compound NNF subformula
    receives a fresh definition variable.  The encoding is *projection
    exact*: restricted to variables ``1..n``, its models are precisely the
    models of ``formula`` (each extended uniquely to the auxiliaries),
    because every definition variable is constrained by a biconditional.
    """
    nnf = to_nnf(eliminate_sugar(formula))
    clauses: list[Clause] = []
    next_variable = vocabulary.size + 1
    cache: dict[Formula, int] = {}

    def define(node: Formula) -> int:
        """Return a literal equivalent to ``node``, adding definition
        clauses for compound nodes."""
        nonlocal next_variable
        if isinstance(node, Atom):
            return vocabulary.index(node.name) + 1
        if isinstance(node, Not):
            # NNF guarantees the child is an atom.
            return -(vocabulary.index(node.child.name) + 1)
        if node in cache:
            return cache[node]
        if isinstance(node, Top):
            variable = next_variable
            next_variable += 1
            clauses.append((variable,))
            cache[node] = variable
            return variable
        if isinstance(node, Bottom):
            variable = next_variable
            next_variable += 1
            clauses.append((-variable,))
            cache[node] = variable
            return variable
        if isinstance(node, And):
            literals = [define(op) for op in node.operands]
            variable = next_variable
            next_variable += 1
            # variable <-> AND(literals)
            for literal in literals:
                clauses.append((-variable, literal))
            clauses.append(tuple([variable] + [-lit for lit in literals]))
            cache[node] = variable
            return variable
        if isinstance(node, Or):
            literals = [define(op) for op in node.operands]
            variable = next_variable
            next_variable += 1
            # variable <-> OR(literals)
            for literal in literals:
                clauses.append((variable, -literal))
            clauses.append(tuple([-variable] + literals))
            cache[node] = variable
            return variable
        raise ReproError(f"unexpected NNF node {type(node).__name__}")

    root = define(nnf)
    clauses.append((root,))
    return CnfProblem(
        clauses=tuple(clauses),
        num_variables=next_variable - 1,
        vocabulary=vocabulary,
        atom_variables=tuple(range(1, vocabulary.size + 1)),
    )
