"""Reduced Ordered Binary Decision Diagrams (ROBDDs).

A third representation of ``Mod(φ)`` next to the numpy truth table and the
DPLL enumerator: canonical, shares structure across subformulas, counts
models without enumerating them, and — because equivalent formulas reduce
to the *same node* — decides equivalence in O(1) after construction.

The implementation is a classic hash-consed ROBDD with an ITE (if-then-
else) core:

* nodes are integers; ``0``/``1`` are the terminals;
* the unique table guarantees canonicity under the fixed variable order
  (the vocabulary order);
* all boolean connectives reduce to :meth:`BddManager.ite` with
  memoization.

:class:`BddEngine` adapts the manager to the
:class:`repro.logic.enumeration.EnumerationEngine` protocol so every
operator in the library can run on BDD-backed enumeration; the E10
ablation compares the three engines.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import VocabularyError
from repro.logic.interpretation import Vocabulary
from repro.logic.semantics import ModelSet
from repro.logic.syntax import (
    And,
    Atom,
    Bottom,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    Xor,
)

__all__ = ["BddManager", "BddEngine"]

#: Terminal node ids.
FALSE = 0
TRUE = 1


class BddManager:
    """Hash-consed ROBDD manager over a fixed vocabulary.

    Node ids are stable for the manager's lifetime; equivalent formulas
    build to identical ids.

    >>> manager = BddManager(Vocabulary(["a", "b"]))
    >>> left = manager.from_formula(Atom("a") >> Atom("b"))
    >>> right = manager.from_formula(~Atom("a") | Atom("b"))
    >>> left == right
    True
    """

    def __init__(self, vocabulary: Vocabulary):
        self._vocabulary = vocabulary
        # node id -> (level, low, high); terminals get a sentinel level so
        # they always sort after every variable.
        self._nodes: list[tuple[int, int, int]] = [
            (vocabulary.size, FALSE, FALSE),
            (vocabulary.size, TRUE, TRUE),
        ]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self._count_cache: dict[int, int] = {}

    # -- accessors -------------------------------------------------------------

    @property
    def vocabulary(self) -> Vocabulary:
        """The variable universe (also the variable order)."""
        return self._vocabulary

    @property
    def node_count(self) -> int:
        """Total allocated nodes, terminals included."""
        return len(self._nodes)

    def level(self, node: int) -> int:
        """The variable level the node branches on (terminals sort last)."""
        return self._nodes[node][0]

    def low(self, node: int) -> int:
        """The else-branch (variable false)."""
        return self._nodes[node][1]

    def high(self, node: int) -> int:
        """The then-branch (variable true)."""
        return self._nodes[node][2]

    # -- construction -----------------------------------------------------------

    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._nodes)
            self._nodes.append(key)
            self._unique[key] = node
        return node

    def var(self, name: str) -> int:
        """The BDD of a single positive atom."""
        return self._mk(self._vocabulary.index(name), FALSE, TRUE)

    def ite(self, condition: int, then_branch: int, else_branch: int) -> int:
        """If-then-else: the universal connective all others reduce to."""
        if condition == TRUE:
            return then_branch
        if condition == FALSE:
            return else_branch
        if then_branch == else_branch:
            return then_branch
        if then_branch == TRUE and else_branch == FALSE:
            return condition
        key = (condition, then_branch, else_branch)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        top = min(
            self.level(condition), self.level(then_branch), self.level(else_branch)
        )

        def cofactor(node: int, positive: bool) -> int:
            if self.level(node) != top:
                return node
            return self.high(node) if positive else self.low(node)

        high = self.ite(
            cofactor(condition, True),
            cofactor(then_branch, True),
            cofactor(else_branch, True),
        )
        low = self.ite(
            cofactor(condition, False),
            cofactor(then_branch, False),
            cofactor(else_branch, False),
        )
        result = self._mk(top, low, high)
        self._ite_cache[key] = result
        return result

    def apply_not(self, node: int) -> int:
        """Negation."""
        return self.ite(node, FALSE, TRUE)

    def apply_and(self, left: int, right: int) -> int:
        """Conjunction."""
        return self.ite(left, right, FALSE)

    def apply_or(self, left: int, right: int) -> int:
        """Disjunction."""
        return self.ite(left, TRUE, right)

    def apply_xor(self, left: int, right: int) -> int:
        """Exclusive disjunction."""
        return self.ite(left, self.apply_not(right), right)

    def apply_iff(self, left: int, right: int) -> int:
        """Biconditional."""
        return self.ite(left, right, self.apply_not(right))

    def from_formula(self, formula: Formula) -> int:
        """Build the (canonical) BDD of a formula."""
        if isinstance(formula, Atom):
            return self.var(formula.name)
        if isinstance(formula, Top):
            return TRUE
        if isinstance(formula, Bottom):
            return FALSE
        if isinstance(formula, Not):
            return self.apply_not(self.from_formula(formula.child))
        if isinstance(formula, And):
            result = TRUE
            for operand in formula.operands:
                result = self.apply_and(result, self.from_formula(operand))
                if result == FALSE:
                    return FALSE
            return result
        if isinstance(formula, Or):
            result = FALSE
            for operand in formula.operands:
                result = self.apply_or(result, self.from_formula(operand))
                if result == TRUE:
                    return TRUE
            return result
        if isinstance(formula, Implies):
            return self.ite(
                self.from_formula(formula.lhs), self.from_formula(formula.rhs), TRUE
            )
        if isinstance(formula, Iff):
            return self.apply_iff(
                self.from_formula(formula.lhs), self.from_formula(formula.rhs)
            )
        if isinstance(formula, Xor):
            return self.apply_xor(
                self.from_formula(formula.lhs), self.from_formula(formula.rhs)
            )
        raise TypeError(f"unknown formula node {type(formula).__name__}")

    # -- queries -----------------------------------------------------------------

    def count_models(self, node: int) -> int:
        """Number of satisfying interpretations, *without* enumeration.

        Linear in the node count: each node's count is
        ``count(low)·2^(skipped levels) + count(high)·2^(skipped levels)``.
        """

        def count_from(node_id: int, from_level: int) -> int:
            node_level = self.level(node_id)
            if node_id <= TRUE:
                free = self._vocabulary.size - from_level
                return node_id * (1 << free)
            cached = self._count_cache.get(node_id)
            if cached is None:
                cached = count_from(self.low(node_id), node_level + 1) + count_from(
                    self.high(node_id), node_level + 1
                )
                self._count_cache[node_id] = cached
            return cached << (node_level - from_level)

        return count_from(node, 0)

    def iter_models(self, node: int) -> Iterator[int]:
        """Yield the bitmasks of all satisfying interpretations, ascending.

        Free (skipped) variables are expanded, so the yield count equals
        :meth:`count_models`; use the counter when only the size matters.
        """
        size = self._vocabulary.size

        def walk(node_id: int, from_level: int, prefix: int) -> Iterator[int]:
            if node_id == FALSE:
                return
            node_level = self.level(node_id)
            # Expand free variables between from_level and node_level.
            free_levels = range(from_level, min(node_level, size))
            if node_id == TRUE:
                free = [1 << lvl for lvl in range(from_level, size)]
                for combo in range(1 << len(free)):
                    extra = 0
                    for i, bit in enumerate(free):
                        if combo & (1 << i):
                            extra |= bit
                    yield prefix | extra
                return
            free_bits = [1 << lvl for lvl in free_levels]
            for combo in range(1 << len(free_bits)):
                extra = 0
                for i, bit in enumerate(free_bits):
                    if combo & (1 << i):
                        extra |= bit
                yield from walk(self.low(node_id), node_level + 1, prefix | extra)
                yield from walk(
                    self.high(node_id),
                    node_level + 1,
                    prefix | extra | (1 << node_level),
                )

        yield from sorted(walk(node, 0, 0))

    def to_model_set(self, node: int) -> ModelSet:
        """Materialize the node's models as a :class:`ModelSet`."""
        return ModelSet(self._vocabulary, self.iter_models(node))

    def reachable_count(self, node: int) -> int:
        """Number of nodes reachable from ``node`` (terminals included) —
        the size of the reduced diagram itself, as opposed to
        :attr:`node_count`, which also counts intermediate allocations."""
        seen: set[int] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            if current > TRUE:
                stack.append(self.low(current))
                stack.append(self.high(current))
        return len(seen)

    def is_satisfiable(self, node: int) -> bool:
        """True unless the node is the FALSE terminal (canonical form)."""
        return node != FALSE

    def is_valid(self, node: int) -> bool:
        """True iff the node is the TRUE terminal."""
        return node == TRUE


class BddEngine:
    """Enumeration engine backed by a per-call :class:`BddManager`.

    Satisfiability and equivalence are terminal checks after construction;
    model materialization expands free variables like the other engines.
    """

    def models(self, formula: Formula, vocabulary: Vocabulary) -> ModelSet:
        missing = formula.atoms() - set(vocabulary.atoms)
        if missing:
            raise VocabularyError(
                f"formula mentions atoms outside the vocabulary: {sorted(missing)}"
            )
        manager = BddManager(vocabulary)
        return manager.to_model_set(manager.from_formula(formula))

    def is_satisfiable(self, formula: Formula, vocabulary: Vocabulary) -> bool:
        missing = formula.atoms() - set(vocabulary.atoms)
        if missing:
            raise VocabularyError(
                f"formula mentions atoms outside the vocabulary: {sorted(missing)}"
            )
        manager = BddManager(vocabulary)
        return manager.is_satisfiable(manager.from_formula(formula))

    def count_models(self, formula: Formula, vocabulary: Vocabulary) -> int:
        """Model count without enumeration — cheap even when the count is
        astronomically large."""
        manager = BddManager(vocabulary)
        return manager.count_models(manager.from_formula(formula))
