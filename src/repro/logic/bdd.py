"""Reduced Ordered Binary Decision Diagrams (ROBDDs).

A third representation of ``Mod(φ)`` next to the numpy truth table and the
DPLL enumerator: canonical, shares structure across subformulas, counts
models without enumerating them, and — because equivalent formulas reduce
to the *same node* — decides equivalence in O(1) after construction.

The implementation is a classic hash-consed ROBDD with an ITE (if-then-
else) core:

* nodes are integers; ``0``/``1`` are the terminals;
* the unique table guarantees canonicity under the fixed variable order
  (the vocabulary order);
* all boolean connectives reduce to :meth:`BddManager.ite` with
  memoization.

:class:`BddEngine` adapts the manager to the
:class:`repro.logic.enumeration.EnumerationEngine` protocol so every
operator in the library can run on BDD-backed enumeration; the E10
ablation compares the three engines.

Beyond the connectives, the manager carries the set-level operations the
symbolic backend (:mod:`repro.symbolic`) is built from: existential
quantification (= forgetting one atom), Hamming dilation and cached ball
chains, weighted level sets (``popcount ≤ k`` predicates), symmetric-
difference images, subset-minimal elements, cube enumeration, and
truth-table lifting.  Managers are *persistent*: :func:`manager_for`
hands out one shared manager per vocabulary from a bounded LRU registry
(statistics via :func:`manager_cache_info`, shaped like
:class:`repro.orders.cache.CacheInfo`), so formula and operation caches
survive across queries instead of being rebuilt per call.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterable, Iterator, NamedTuple, Optional

from repro.errors import VocabularyError
from repro.logic.interpretation import Vocabulary
from repro.logic.semantics import ModelSet
from repro.logic.syntax import (
    BOTTOM,
    TOP,
    And,
    Atom,
    Bottom,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    Xor,
    conjoin,
    disjoin,
)

__all__ = [
    "BddManager",
    "BddEngine",
    "BddCacheInfo",
    "manager_for",
    "manager_cache_info",
    "clear_managers",
    "DEFAULT_MANAGER_CACHE_SIZE",
]

#: Terminal node ids.
FALSE = 0
TRUE = 1

#: Distinct cache-miss sentinel (``None`` and ``0`` are both valid values).
_MISSING = object()


class BddCacheInfo(NamedTuple):
    """Cache statistics, field-compatible with
    :class:`repro.orders.cache.CacheInfo` (defined locally because
    ``repro.logic`` sits below ``repro.orders`` in the import order)."""

    hits: int
    misses: int
    evictions: int
    maxsize: Optional[int]
    currsize: int


class BddManager:
    """Hash-consed ROBDD manager over a fixed vocabulary.

    Node ids are stable for the manager's lifetime; equivalent formulas
    build to identical ids.

    >>> manager = BddManager(Vocabulary(["a", "b"]))
    >>> left = manager.from_formula(Atom("a") >> Atom("b"))
    >>> right = manager.from_formula(~Atom("a") | Atom("b"))
    >>> left == right
    True
    """

    def __init__(self, vocabulary: Vocabulary):
        self._vocabulary = vocabulary
        # node id -> (level, low, high); terminals get a sentinel level so
        # they always sort after every variable.
        self._nodes: list[tuple[int, int, int]] = [
            (vocabulary.size, FALSE, FALSE),
            (vocabulary.size, TRUE, TRUE),
        ]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self._count_cache: dict[int, int] = {}
        # Formula cache: the whole point of sharing one manager per
        # vocabulary — repeated queries over the same formulas are O(1).
        self._formula_cache: dict[Formula, int] = {}
        self._formula_hits = 0
        self._formula_misses = 0
        # Operation caches for the symbolic backend.  All are keyed by
        # node ids, which are stable for the manager's lifetime; none can
        # outgrow a polynomial of the node count.
        self._quant_cache: dict[tuple[int, int], int] = {}
        self._flip_cache: dict[int, int] = {}
        self._dilate_cache: dict[int, int] = {}
        self._ball_chains: dict[int, list[int]] = {}
        self._xor_cache: dict[tuple[int, int], int] = {}
        self._uc_cache: dict[int, int] = {}
        self._min_cache: dict[tuple[int, int], int] = {}
        self._weight_cache: dict[tuple[str, int, int], int] = {}
        self._any_cache: dict[int, Optional[int]] = {}

    # -- accessors -------------------------------------------------------------

    @property
    def vocabulary(self) -> Vocabulary:
        """The variable universe (also the variable order)."""
        return self._vocabulary

    @property
    def node_count(self) -> int:
        """Total allocated nodes, terminals included."""
        return len(self._nodes)

    def level(self, node: int) -> int:
        """The variable level the node branches on (terminals sort last)."""
        return self._nodes[node][0]

    def low(self, node: int) -> int:
        """The else-branch (variable false)."""
        return self._nodes[node][1]

    def high(self, node: int) -> int:
        """The then-branch (variable true)."""
        return self._nodes[node][2]

    # -- construction -----------------------------------------------------------

    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._nodes)
            self._nodes.append(key)
            self._unique[key] = node
        return node

    def var(self, name: str) -> int:
        """The BDD of a single positive atom."""
        return self._mk(self._vocabulary.index(name), FALSE, TRUE)

    def ite(self, condition: int, then_branch: int, else_branch: int) -> int:
        """If-then-else: the universal connective all others reduce to."""
        if condition == TRUE:
            return then_branch
        if condition == FALSE:
            return else_branch
        if then_branch == else_branch:
            return then_branch
        if then_branch == TRUE and else_branch == FALSE:
            return condition
        key = (condition, then_branch, else_branch)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        top = min(
            self.level(condition), self.level(then_branch), self.level(else_branch)
        )

        def cofactor(node: int, positive: bool) -> int:
            if self.level(node) != top:
                return node
            return self.high(node) if positive else self.low(node)

        high = self.ite(
            cofactor(condition, True),
            cofactor(then_branch, True),
            cofactor(else_branch, True),
        )
        low = self.ite(
            cofactor(condition, False),
            cofactor(then_branch, False),
            cofactor(else_branch, False),
        )
        result = self._mk(top, low, high)
        self._ite_cache[key] = result
        return result

    def apply_not(self, node: int) -> int:
        """Negation."""
        return self.ite(node, FALSE, TRUE)

    def apply_and(self, left: int, right: int) -> int:
        """Conjunction."""
        return self.ite(left, right, FALSE)

    def apply_or(self, left: int, right: int) -> int:
        """Disjunction."""
        return self.ite(left, TRUE, right)

    def apply_xor(self, left: int, right: int) -> int:
        """Exclusive disjunction."""
        return self.ite(left, self.apply_not(right), right)

    def apply_iff(self, left: int, right: int) -> int:
        """Biconditional."""
        return self.ite(left, right, self.apply_not(right))

    def from_formula(self, formula: Formula) -> int:
        """Build the (canonical) BDD of a formula, memoized per subformula.

        Formulas hash structurally, so a shared manager answers repeated
        queries — and queries over common subformulas — from cache.
        """
        node = self._formula_cache.get(formula)
        if node is not None:
            self._formula_hits += 1
            return node
        self._formula_misses += 1
        node = self._translate(formula)
        self._formula_cache[formula] = node
        return node

    def _translate(self, formula: Formula) -> int:
        if isinstance(formula, Atom):
            return self.var(formula.name)
        if isinstance(formula, Top):
            return TRUE
        if isinstance(formula, Bottom):
            return FALSE
        if isinstance(formula, Not):
            return self.apply_not(self.from_formula(formula.child))
        if isinstance(formula, And):
            result = TRUE
            for operand in formula.operands:
                result = self.apply_and(result, self.from_formula(operand))
                if result == FALSE:
                    return FALSE
            return result
        if isinstance(formula, Or):
            result = FALSE
            for operand in formula.operands:
                result = self.apply_or(result, self.from_formula(operand))
                if result == TRUE:
                    return TRUE
            return result
        if isinstance(formula, Implies):
            return self.ite(
                self.from_formula(formula.lhs), self.from_formula(formula.rhs), TRUE
            )
        if isinstance(formula, Iff):
            return self.apply_iff(
                self.from_formula(formula.lhs), self.from_formula(formula.rhs)
            )
        if isinstance(formula, Xor):
            return self.apply_xor(
                self.from_formula(formula.lhs), self.from_formula(formula.rhs)
            )
        raise TypeError(f"unknown formula node {type(formula).__name__}")

    # -- symbolic set operations -------------------------------------------------

    def var_level(self, level: int) -> int:
        """The BDD of the positive atom at ``level`` (by index, not name)."""
        if not 0 <= level < self._vocabulary.size:
            raise VocabularyError(f"no atom at level {level}")
        return self._mk(level, FALSE, TRUE)

    def exists(self, node: int, level: int) -> int:
        """Existential quantification ``∃x.f`` — forgetting one atom.

        ``(∃x.f)(I) = f(I[x:=0]) ∨ f(I[x:=1])``, the BDD form of
        :func:`repro.logic.forgetting.forget` for a single atom.
        """
        if self.level(node) > level:
            return node
        key = (node, level)
        cached = self._quant_cache.get(key)
        if cached is not None:
            return cached
        if self.level(node) == level:
            result = self.apply_or(self.low(node), self.high(node))
        else:
            result = self._mk(
                self.level(node),
                self.exists(self.low(node), level),
                self.exists(self.high(node), level),
            )
        self._quant_cache[key] = result
        return result

    def forget_levels(self, node: int, levels: Iterable[int]) -> int:
        """Forget several atoms: iterated existential quantification."""
        for level in sorted(set(levels)):
            node = self.exists(node, level)
        return node

    def flip_all(self, node: int) -> int:
        """The image of the set under complementing every atom:
        ``{~I : I ∈ f}`` (swap low/high at every node)."""
        if node <= TRUE:
            return node
        cached = self._flip_cache.get(node)
        if cached is not None:
            return cached
        result = self._mk(
            self.level(node),
            self.flip_all(self.high(node)),
            self.flip_all(self.low(node)),
        )
        self._flip_cache[node] = result
        return result

    def dilate(self, node: int) -> int:
        """Hamming dilation: all interpretations at distance ≤ 1 from the
        set — ``f ∨ ⋁_x ∃x.f`` (each ``∃x.f`` contains both ``f`` and the
        single-bit flips at ``x``)."""
        if node <= TRUE:
            return node
        cached = self._dilate_cache.get(node)
        if cached is not None:
            return cached
        result = node
        for level in range(self._vocabulary.size):
            result = self.apply_or(result, self.exists(node, level))
            if result == TRUE:
                break
        self._dilate_cache[node] = result
        return result

    def hamming_ball(self, node: int, radius: int) -> int:
        """All interpretations within Hamming distance ``radius`` of the
        set: the ``radius``-fold dilation, with the chain cached per base
        node and shared across radii (the symbolic "sphere" predicates)."""
        if radius < 0:
            return FALSE
        chain = self._ball_chains.setdefault(node, [node])
        while len(chain) <= radius and chain[-1] != TRUE:
            grown = self.dilate(chain[-1])
            if grown == chain[-1]:  # fixpoint (e.g. the empty set)
                break
            chain.append(grown)
        return chain[min(radius, len(chain) - 1)]

    def weight_le(self, bound: int) -> int:
        """The weighted level set ``{I : |I| ≤ bound}`` (popcount bound),
        built by the standard symmetric-function DP."""
        return self._weight(0, bound, "le")

    def weight_eq(self, weight: int) -> int:
        """The weighted level shell ``{I : |I| = weight}``."""
        return self._weight(0, weight, "eq")

    def _weight(self, level: int, budget: int, mode: str) -> int:
        size = self._vocabulary.size
        if budget < 0:
            return FALSE
        remaining = size - level
        if mode == "le" and budget >= remaining:
            return TRUE
        if mode == "eq":
            if budget > remaining:
                return FALSE
            if remaining == 0:
                return TRUE if budget == 0 else FALSE
        elif remaining == 0:
            return TRUE
        key = (mode, level, budget)
        cached = self._weight_cache.get(key)
        if cached is not None:
            return cached
        result = self._mk(
            level,
            self._weight(level + 1, budget, mode),
            self._weight(level + 1, budget - 1, mode),
        )
        self._weight_cache[key] = result
        return result

    def xor_image(self, left: int, right: int) -> int:
        """The symmetric-difference image ``{I ⊕ J : I ∈ f, J ∈ g}`` —
        Satoh's set of difference bitmasks, computed without enumerating
        either operand."""
        if left == FALSE or right == FALSE:
            return FALSE
        if left == TRUE and right == TRUE:
            return TRUE
        key = (left, right) if left <= right else (right, left)
        cached = self._xor_cache.get(key)
        if cached is not None:
            return cached
        top = min(self.level(left), self.level(right))

        def cofactor(node: int, positive: bool) -> int:
            if self.level(node) != top:
                return node
            return self.high(node) if positive else self.low(node)

        l0, l1 = cofactor(left, False), cofactor(left, True)
        r0, r1 = cofactor(right, False), cofactor(right, True)
        low = self.apply_or(self.xor_image(l0, r0), self.xor_image(l1, r1))
        high = self.apply_or(self.xor_image(l0, r1), self.xor_image(l1, r0))
        result = self._mk(top, low, high)
        self._xor_cache[key] = result
        return result

    def upward_closure(self, node: int) -> int:
        """``{J : ∃I ∈ f, I ⊆ J}`` — every superset of a member.

        Atoms the diagram never tests stay untested: a free atom can
        always be 0 in the witness subset, so the closure does not
        constrain it.
        """
        if node <= TRUE:
            return node
        cached = self._uc_cache.get(node)
        if cached is not None:
            return cached
        low = self.upward_closure(self.low(node))
        high = self.apply_or(low, self.upward_closure(self.high(node)))
        result = self._mk(self.level(node), low, high)
        self._uc_cache[node] = result
        return result

    def subset_minimal(self, node: int) -> int:
        """The ⊆-minimal members of the set, over the *full* vocabulary.

        A member with an atom the diagram never tests is never minimal
        with that atom true (clearing it yields a smaller member), so the
        recursion tracks levels explicitly rather than skipping free
        variables.
        """
        return self._subset_minimal(node, 0)

    def _subset_minimal(self, node: int, level: int) -> int:
        if node == FALSE:
            return FALSE
        if level >= self._vocabulary.size:
            return node
        key = (node, level)
        cached = self._min_cache.get(key)
        if cached is not None:
            return cached
        if self.level(node) > level:
            # Free atom: minimal members have it false.
            result = self._mk(level, self._subset_minimal(node, level + 1), FALSE)
        else:
            low, high = self.low(node), self.high(node)
            kept_high = self.apply_and(
                self._subset_minimal(high, level + 1),
                self.apply_not(self.upward_closure(low)),
            )
            result = self._mk(
                level, self._subset_minimal(low, level + 1), kept_high
            )
        self._min_cache[key] = result
        return result

    # -- queries -----------------------------------------------------------------

    def count_models(self, node: int) -> int:
        """Number of satisfying interpretations, *without* enumeration.

        Linear in the node count: each node's count is
        ``count(low)·2^(skipped levels) + count(high)·2^(skipped levels)``.
        """

        def count_from(node_id: int, from_level: int) -> int:
            node_level = self.level(node_id)
            if node_id <= TRUE:
                free = self._vocabulary.size - from_level
                return node_id * (1 << free)
            cached = self._count_cache.get(node_id)
            if cached is None:
                cached = count_from(self.low(node_id), node_level + 1) + count_from(
                    self.high(node_id), node_level + 1
                )
                self._count_cache[node_id] = cached
            return cached << (node_level - from_level)

        return count_from(node, 0)

    def iter_models(self, node: int) -> Iterator[int]:
        """Yield the bitmasks of all satisfying interpretations, ascending.

        Free (skipped) variables are expanded, so the yield count equals
        :meth:`count_models`; use the counter when only the size matters.
        """
        size = self._vocabulary.size

        def walk(node_id: int, from_level: int, prefix: int) -> Iterator[int]:
            if node_id == FALSE:
                return
            node_level = self.level(node_id)
            # Expand free variables between from_level and node_level.
            free_levels = range(from_level, min(node_level, size))
            if node_id == TRUE:
                free = [1 << lvl for lvl in range(from_level, size)]
                for combo in range(1 << len(free)):
                    extra = 0
                    for i, bit in enumerate(free):
                        if combo & (1 << i):
                            extra |= bit
                    yield prefix | extra
                return
            free_bits = [1 << lvl for lvl in free_levels]
            for combo in range(1 << len(free_bits)):
                extra = 0
                for i, bit in enumerate(free_bits):
                    if combo & (1 << i):
                        extra |= bit
                yield from walk(self.low(node_id), node_level + 1, prefix | extra)
                yield from walk(
                    self.high(node_id),
                    node_level + 1,
                    prefix | extra | (1 << node_level),
                )

        yield from sorted(walk(node, 0, 0))

    def to_model_set(self, node: int) -> ModelSet:
        """Materialize the node's models as a :class:`ModelSet`."""
        return ModelSet(self._vocabulary, self.iter_models(node))

    def reachable_count(self, node: int) -> int:
        """Number of nodes reachable from ``node`` (terminals included) —
        the size of the reduced diagram itself, as opposed to
        :attr:`node_count`, which also counts intermediate allocations."""
        seen: set[int] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            if current > TRUE:
                stack.append(self.low(current))
                stack.append(self.high(current))
        return len(seen)

    def is_satisfiable(self, node: int) -> bool:
        """True unless the node is the FALSE terminal (canonical form)."""
        return node != FALSE

    def is_valid(self, node: int) -> bool:
        """True iff the node is the TRUE terminal."""
        return node == TRUE

    def evaluate(self, node: int, mask: int) -> bool:
        """Membership test: does the interpretation bitmask satisfy the
        node?  O(vocabulary size)."""
        while node > TRUE:
            if (mask >> self.level(node)) & 1:
                node = self.high(node)
            else:
                node = self.low(node)
        return node == TRUE

    def any_model(self, node: int) -> Optional[int]:
        """The numerically smallest satisfying bitmask, or ``None`` for
        FALSE — a deterministic witness usable at any vocabulary size."""
        if node == FALSE:
            return None
        if node == TRUE:
            return 0
        cached = self._any_cache.get(node, _MISSING)
        if cached is not _MISSING:
            return cached  # type: ignore[return-value]
        low_min = self.any_model(self.low(node))
        high_min = self.any_model(self.high(node))
        candidates = []
        if low_min is not None:
            candidates.append(low_min)
        if high_min is not None:
            candidates.append(high_min | (1 << self.level(node)))
        result = min(candidates)
        self._any_cache[node] = result
        return result

    def iter_cubes(self, node: int) -> Iterator[tuple[int, int]]:
        """Yield the diagram's root-to-TRUE paths as implicant cubes
        ``(fixed_mask, value_mask)`` (the :mod:`repro.logic.implicants`
        encoding).  Cubes are pairwise disjoint, so their disjunction is
        exact — one cube per path, not per model."""

        def walk(node_id: int, fixed: int, value: int) -> Iterator[tuple[int, int]]:
            if node_id == FALSE:
                return
            if node_id == TRUE:
                yield (fixed, value)
                return
            bit = 1 << self.level(node_id)
            yield from walk(self.low(node_id), fixed | bit, value)
            yield from walk(self.high(node_id), fixed | bit, value | bit)

        yield from walk(node, 0, 0)

    def from_cubes(self, cubes: Iterable[tuple[int, int]]) -> int:
        """Build the disjunction of implicant cubes
        ``(fixed_mask, value_mask)`` — the inverse of :meth:`iter_cubes`
        and the bridge from :func:`repro.logic.implicants.minimal_cover`."""
        result = FALSE
        for fixed, value in cubes:
            cube = TRUE
            for level in reversed(range(self._vocabulary.size)):
                bit = 1 << level
                if fixed & bit:
                    if value & bit:
                        cube = self._mk(level, FALSE, cube)
                    else:
                        cube = self._mk(level, cube, FALSE)
            result = self.apply_or(result, cube)
            if result == TRUE:
                return TRUE
        return result

    def from_masks(self, masks: Iterable[int]) -> int:
        """Build the set of explicitly listed interpretation bitmasks."""
        full = (1 << self._vocabulary.size) - 1
        return self.from_cubes((full, mask) for mask in masks)

    def from_truth_bits(self, bits: int) -> int:
        """Lift a packed truth table (bit ``m`` set ⇔ interpretation mask
        ``m`` is a member — the harness's knowledge-base encoding) into a
        node, sharing repeated subtables along the way."""
        size = self._vocabulary.size
        memo: dict[tuple[int, int], int] = {}

        def build(table: int, width: int) -> int:
            if width == 0:
                return TRUE if table & 1 else FALSE
            table &= (1 << (1 << width)) - 1
            key = (table, width)
            node = memo.get(key)
            if node is not None:
                return node
            if table == 0:
                node = FALSE
            else:
                # Entries with the lowest remaining atom false sit at the
                # even table indices; split via an LSB-first bit string.
                reversed_bits = format(table, "0{}b".format(1 << width))[::-1]
                low = build(int(reversed_bits[0::2][::-1] or "0", 2), width - 1)
                high = build(int(reversed_bits[1::2][::-1] or "0", 2), width - 1)
                node = self._mk(size - width, low, high)
            memo[key] = node
            return node

        return build(bits, size)

    def to_formula(self, node: int) -> Formula:
        """A DNF formula whose models are exactly the node's set — one
        conjunct per diagram path, so the size tracks the diagram, not the
        model count (usable at 30+ atoms where ``form_formula`` is not)."""
        if node == FALSE:
            return BOTTOM
        if node == TRUE:
            return TOP
        atoms = self._vocabulary.atoms
        terms = []
        for fixed, value in self.iter_cubes(node):
            literals: list[Formula] = []
            for level in range(self._vocabulary.size):
                bit = 1 << level
                if fixed & bit:
                    atom = Atom(atoms[level])
                    literals.append(atom if value & bit else Not(atom))
            terms.append(conjoin(literals))
        return disjoin(terms)

    def cache_info(self) -> BddCacheInfo:
        """Formula-cache statistics (the shared-manager regression
        surface; shaped like ``AssignmentCache.cache_info()``).  The cache
        is unbounded but node-backed: entries cost one int each, and the
        registry bound on managers bounds total memory."""
        return BddCacheInfo(
            hits=self._formula_hits,
            misses=self._formula_misses,
            evictions=0,
            maxsize=None,
            currsize=len(self._formula_cache),
        )


#: Bound on simultaneously cached per-vocabulary managers.  Managers hold
#: every node they ever allocated, so the registry bound — not the
#: per-manager caches — is the memory ceiling.
DEFAULT_MANAGER_CACHE_SIZE = 8


class _ManagerRegistry:
    """Bounded LRU of shared per-vocabulary managers.

    A hand-rolled sibling of :class:`repro.orders.cache.AssignmentCache`
    (which cannot be imported here without inverting the layer order):
    same locking discipline, same statistics shape, and the same
    ``cache.<name>.*`` observability counters when a registry is active.
    """

    def __init__(self, maxsize: int, name: str = "bdd.managers"):
        self._data: "OrderedDict[Vocabulary, BddManager]" = OrderedDict()
        self._maxsize = maxsize
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._lock = threading.Lock()
        self.name = name

    def _publish(self, hits: int = 0, misses: int = 0, evictions: int = 0) -> None:
        try:  # telemetry only; never let the obs layer break a lookup
            from repro import obs

            registry = obs.active()
        except Exception:
            return
        if registry is None:
            return
        prefix = f"cache.{self.name}"
        if hits:
            registry.counter(f"{prefix}.hits").inc(hits)
        if misses:
            registry.counter(f"{prefix}.misses").inc(misses)
        if evictions:
            registry.counter(f"{prefix}.evictions").inc(evictions)

    def get(self, vocabulary: Vocabulary) -> BddManager:
        evicted = 0
        with self._lock:
            manager = self._data.get(vocabulary)
            hit = manager is not None
            if hit:
                self._hits += 1
                self._data.move_to_end(vocabulary)
            else:
                self._misses += 1
                manager = BddManager(vocabulary)
                self._data[vocabulary] = manager
                while len(self._data) > self._maxsize:
                    self._data.popitem(last=False)
                    self._evictions += 1
                    evicted += 1
        self._publish(hits=int(hit), misses=int(not hit), evictions=evicted)
        return manager

    def cache_info(self) -> BddCacheInfo:
        with self._lock:
            return BddCacheInfo(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                maxsize=self._maxsize,
                currsize=len(self._data),
            )

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0


_REGISTRY = _ManagerRegistry(DEFAULT_MANAGER_CACHE_SIZE)


def manager_for(vocabulary: Vocabulary) -> BddManager:
    """The shared manager for a vocabulary (bounded LRU; one per
    vocabulary, so formula and operation caches persist across calls)."""
    return _REGISTRY.get(vocabulary)


def manager_cache_info() -> BddCacheInfo:
    """Statistics of the shared-manager registry."""
    return _REGISTRY.cache_info()


def clear_managers() -> None:
    """Drop every shared manager (tests and memory-pressure escape hatch)."""
    _REGISTRY.clear()


class BddEngine:
    """Enumeration engine backed by the *shared* per-vocabulary manager.

    Satisfiability and equivalence are terminal checks after construction;
    model materialization expands free variables like the other engines.
    Formula caches persist across calls (see :func:`manager_for`), so
    repeated queries over a vocabulary are answered from cache instead of
    rebuilding the diagram — ``cache_info()`` exposes the traffic.
    """

    def _manager(self, formula: Formula, vocabulary: Vocabulary) -> BddManager:
        missing = formula.atoms() - set(vocabulary.atoms)
        if missing:
            raise VocabularyError(
                f"formula mentions atoms outside the vocabulary: {sorted(missing)}"
            )
        return manager_for(vocabulary)

    def models(self, formula: Formula, vocabulary: Vocabulary) -> ModelSet:
        manager = self._manager(formula, vocabulary)
        return manager.to_model_set(manager.from_formula(formula))

    def is_satisfiable(self, formula: Formula, vocabulary: Vocabulary) -> bool:
        manager = self._manager(formula, vocabulary)
        return manager.is_satisfiable(manager.from_formula(formula))

    def count_models(self, formula: Formula, vocabulary: Vocabulary) -> int:
        """Model count without enumeration — cheap even when the count is
        astronomically large."""
        manager = self._manager(formula, vocabulary)
        return manager.count_models(manager.from_formula(formula))

    def cache_info(self) -> BddCacheInfo:
        """Shared-manager registry statistics (hits mean a later query
        reused an earlier query's manager and caches)."""
        return manager_cache_info()
