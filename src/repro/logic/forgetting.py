"""Variable forgetting (existential quantification over atoms).

``forget(φ, A)`` is the strongest consequence of φ that is independent of
the atoms in ``A`` — semantically, the projection of ``Mod(φ)`` along
those atoms:

    ``Mod(forget(φ, A)) = { I : ∃J ∈ Mod(φ), I and J agree outside A }``

Forgetting is the logical core of several operators in this library —
Weber's revision is literally "forget the minimal-diff atoms of ψ, then
conjoin μ" (cross-checked in the tests) — and a generally useful database
operation (drop a column's influence without touching the rest of the
theory).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.logic.enumeration import form_formula, models
from repro.logic.interpretation import Vocabulary
from repro.logic.semantics import ModelSet
from repro.logic.syntax import Formula

__all__ = ["forget_models", "forget"]


def forget_models(model_set: ModelSet, atoms: Iterable[str]) -> ModelSet:
    """Project a model set along the given atoms.

    Every model is expanded to all interpretations agreeing with it
    outside ``atoms`` — the smallest superset of the model set that is
    independent of those atoms.
    """
    vocabulary = model_set.vocabulary
    forget_mask = 0
    for name in atoms:
        forget_mask |= 1 << vocabulary.index(name)
    if forget_mask == 0 or model_set.is_empty:
        return model_set
    keep_mask = ~forget_mask
    kept_patterns = {mask & keep_mask for mask in model_set.masks}
    forgotten_bits = [
        1 << index
        for index in range(vocabulary.size)
        if forget_mask & (1 << index)
    ]
    expanded: set[int] = set()
    for pattern in kept_patterns:
        for combination in range(1 << len(forgotten_bits)):
            extra = 0
            for position, bit in enumerate(forgotten_bits):
                if combination & (1 << position):
                    extra |= bit
            expanded.add(pattern | extra)
    return ModelSet(vocabulary, expanded)


def forget(
    formula: Formula,
    atoms: Iterable[str],
    vocabulary: Optional[Vocabulary] = None,
) -> Formula:
    """Formula-level forgetting: the canonical formula of the projection.

    >>> from repro.logic.parser import parse
    >>> from repro.logic.interpretation import Vocabulary
    >>> from repro.logic.enumeration import equivalent
    >>> v = Vocabulary(["a", "b"])
    >>> equivalent(forget(parse("a & b"), ["b"], v), parse("a"), v)
    True
    """
    if vocabulary is None:
        vocabulary = Vocabulary.from_formulas(formula)
    return form_formula(forget_models(models(formula, vocabulary), atoms))
