"""Propositional-logic substrate (the paper's Section 2 preliminaries).

This package is self-contained: formula syntax, a parser, bitmask
interpretations over an explicit vocabulary 𝒯, model-set semantics, normal
forms, a from-scratch DPLL SAT solver, and two model-enumeration engines.
Everything above it (distances, pre-orders, the theory-change operators)
consumes only this layer's public API.
"""

from repro.logic.bdd import BddEngine, BddManager
from repro.logic.enumeration import (
    DpllEngine,
    TruthTableEngine,
    cube_formula,
    default_engine,
    entails,
    equivalent,
    form_formula,
    is_satisfiable,
    is_valid,
    models,
)
from repro.logic.forgetting import forget, forget_models
from repro.logic.implicants import minimal_formula, prime_implicants
from repro.logic.interpretation import Interpretation, Vocabulary
from repro.logic.parser import parse
from repro.logic.semantics import ModelSet, evaluate, truth_table
from repro.logic.syntax import (
    BOTTOM,
    TOP,
    And,
    Atom,
    Bottom,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    Xor,
    atoms_of,
    conjoin,
    disjoin,
    formula_depth,
    formula_size,
    rename_atoms,
    subformulas,
    substitute,
)
from repro.logic.transform import (
    eliminate_sugar,
    is_cnf,
    is_dnf,
    is_nnf,
    simplify,
    to_cnf,
    to_dnf,
    to_nnf,
)

__all__ = [
    # syntax
    "Formula",
    "Atom",
    "Top",
    "Bottom",
    "TOP",
    "BOTTOM",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "Xor",
    "conjoin",
    "disjoin",
    "atoms_of",
    "subformulas",
    "substitute",
    "rename_atoms",
    "formula_size",
    "formula_depth",
    # parsing
    "parse",
    # interpretations
    "Vocabulary",
    "Interpretation",
    # semantics
    "ModelSet",
    "evaluate",
    "truth_table",
    # transforms
    "eliminate_sugar",
    "simplify",
    "to_nnf",
    "to_cnf",
    "to_dnf",
    "is_nnf",
    "is_cnf",
    "is_dnf",
    # enumeration
    "models",
    "is_satisfiable",
    "is_valid",
    "entails",
    "equivalent",
    "form_formula",
    "cube_formula",
    "TruthTableEngine",
    "DpllEngine",
    "BddEngine",
    "BddManager",
    "default_engine",
    # minimization
    "minimal_formula",
    "prime_implicants",
    # forgetting
    "forget",
    "forget_models",
]
